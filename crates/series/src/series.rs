//! The symbol time-series container and the paper's projection / `F2`
//! primitives.

use std::fmt;
use std::sync::Arc;

use crate::alphabet::Alphabet;
use crate::error::{Result, SeriesError};
use crate::symbol::SymbolId;

/// Ceiling division for projection lengths.
#[inline]
pub fn ceil_div(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Length of the projection `pi(p, l)` of a series of length `n`:
/// `m = ceil((n - l) / p)` (zero when `l >= n`).
#[inline]
pub fn projection_len(n: usize, p: usize, l: usize) -> usize {
    if l >= n {
        0
    } else {
        ceil_div(n - l, p)
    }
}

/// The paper's confidence denominator for `(p, l)`: the number of adjacent
/// pairs in the projection, `m - 1` (zero when the projection has fewer than
/// two elements).
#[inline]
pub fn pair_denominator(n: usize, p: usize, l: usize) -> usize {
    projection_len(n, p, l).saturating_sub(1)
}

/// A discretized time series: a string over a fixed [`Alphabet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolSeries {
    alphabet: Arc<Alphabet>,
    data: Vec<SymbolId>,
}

impl SymbolSeries {
    /// Builds a series from raw symbol ids, validating each against the
    /// alphabet.
    pub fn from_ids(ids: Vec<SymbolId>, alphabet: Arc<Alphabet>) -> Result<Self> {
        for &id in &ids {
            alphabet.check(id)?;
        }
        Ok(SymbolSeries {
            alphabet,
            data: ids,
        })
    }

    /// Parses a series where each character is one symbol
    /// (`"abcabbabcb"`-style, as in every example of the paper).
    pub fn parse(text: &str, alphabet: &Arc<Alphabet>) -> Result<Self> {
        let mut data = Vec::with_capacity(text.len());
        for (pos, c) in text.chars().enumerate() {
            let id = alphabet.lookup_char(c).map_err(|_| SeriesError::Parse {
                position: pos,
                message: format!("character {c:?} is not in the alphabet"),
            })?;
            data.push(id);
        }
        Ok(SymbolSeries {
            alphabet: Arc::clone(alphabet),
            data,
        })
    }

    /// The series' alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Alphabet size (the paper's `sigma`).
    pub fn sigma(&self) -> usize {
        self.alphabet.len()
    }

    /// Series length (the paper's `n`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the series has no timestamps.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbol at timestamp `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<SymbolId> {
        self.data.get(i).copied()
    }

    /// Raw symbol slice.
    pub fn symbols(&self) -> &[SymbolId] {
        &self.data
    }

    /// Renders the series back to one-character-per-symbol text, when every
    /// symbol name is a single character.
    pub fn to_text(&self) -> Option<String> {
        let mut out = String::with_capacity(self.len());
        for &id in &self.data {
            let name = self.alphabet.name(id);
            let mut chars = name.chars();
            let c = chars.next()?;
            if chars.next().is_some() {
                return None;
            }
            out.push(c);
        }
        Some(out)
    }

    /// 0/1 indicator vector of a symbol: `out[i] = 1` iff `t_i == symbol`.
    ///
    /// These vectors are what the convolution engines correlate; the paper's
    /// interleaved `sigma*n`-bit mapping is exactly the `sigma` of them
    /// laid side by side.
    pub fn indicator(&self, symbol: SymbolId) -> Vec<u64> {
        let mut out = Vec::new();
        self.indicator_into(symbol, &mut out);
        out
    }

    /// [`Self::indicator`] into a caller-owned buffer (cleared first), so a
    /// loop over symbols reuses one allocation.
    pub fn indicator_into(&self, symbol: SymbolId, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.data.iter().map(|&s| u64::from(s == symbol)));
    }

    /// Timestamps at which `symbol` occurs.
    pub fn occurrences(&self, symbol: SymbolId) -> Vec<usize> {
        self.data
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == symbol).then_some(i))
            .collect()
    }

    /// Occurrence count per symbol.
    pub fn histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.sigma()];
        for &s in &self.data {
            counts[s.index()] += 1;
        }
        counts
    }

    /// The projection `pi(p, l)`: symbols at `l, l+p, l+2p, ...`.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn projection(&self, p: usize, l: usize) -> impl Iterator<Item = SymbolId> + '_ {
        assert!(p > 0, "projection period must be positive");
        self.data.iter().copied().skip(l).step_by(p)
    }

    /// `F2(symbol, pi(p, l))`: adjacent same-symbol pairs in the projection,
    /// i.e. `#{ j : j = l (mod p), j + p < n, t_j = t_{j+p} = symbol }`.
    ///
    /// Pairs **overlap**: each projection entry is counted once as a left
    /// endpoint and once as a right endpoint, so a run of `m` equal entries
    /// contributes `m - 1` pairs — `F2(a, "aaa") = 2`, not 1. This matches
    /// the paper's `F2` (count of *consecutive occurrences*, Def. 1) and is
    /// what makes a perfectly periodic symbol score confidence 1.
    ///
    /// ```
    /// use periodica_series::{Alphabet, SymbolSeries};
    /// let alphabet = Alphabet::latin(2)?;
    /// let series = SymbolSeries::parse("aaa", &alphabet)?;
    /// let a = alphabet.lookup("a")?;
    /// // Projection pi(1, 0) is "aaa": the overlapping pairs are
    /// // (t_0, t_1) and (t_1, t_2).
    /// assert_eq!(series.f2_projected(a, 1, 0), 2);
    /// # Ok::<(), periodica_series::SeriesError>(())
    /// ```
    pub fn f2_projected(&self, symbol: SymbolId, p: usize, l: usize) -> usize {
        assert!(p > 0, "projection period must be positive");
        let n = self.len();
        if l >= n {
            return 0;
        }
        let mut count = 0;
        let mut j = l;
        while j + p < n {
            if self.data[j] == symbol && self.data[j + p] == symbol {
                count += 1;
            }
            j += p;
        }
        count
    }

    /// Total lag-`p` match count for `symbol` over all phases:
    /// `#{ j : j + p < n, t_j = t_{j+p} = symbol }`.
    ///
    /// This equals `sum_l F2(symbol, pi(p, l))` and is what the convolution
    /// delivers for every `p` at once.
    pub fn lag_matches(&self, symbol: SymbolId, p: usize) -> usize {
        let n = self.len();
        if p == 0 || p >= n {
            return if p == 0 {
                self.occurrences(symbol).len()
            } else {
                0
            };
        }
        (0..n - p)
            .filter(|&j| self.data[j] == symbol && self.data[j + p] == symbol)
            .count()
    }

    /// The paper's confidence of `(symbol, p, l)`:
    /// `F2 / (ceil((n-l)/p) - 1)`, or 0 when the projection has < 2 entries.
    pub fn confidence(&self, symbol: SymbolId, p: usize, l: usize) -> f64 {
        let denom = pair_denominator(self.len(), p, l);
        if denom == 0 {
            0.0
        } else {
            self.f2_projected(symbol, p, l) as f64 / denom as f64
        }
    }

    /// A sub-series over the same alphabet (used to localize periodicities
    /// in time — e.g. a rhythm active only in part of a stream).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> SymbolSeries {
        SymbolSeries {
            alphabet: Arc::clone(&self.alphabet),
            data: self.data[range].to_vec(),
        }
    }

    /// Fixed-width windows (`width` symbols each, advancing by `step`),
    /// as sub-series. The final partial window is omitted.
    pub fn windows(&self, width: usize, step: usize) -> impl Iterator<Item = SymbolSeries> + '_ {
        assert!(
            width > 0 && step > 0,
            "window width and step must be positive"
        );
        (0..self.len().saturating_sub(width.saturating_sub(1)))
            .step_by(step)
            .map(move |start| self.slice(start..start + width))
    }
}

impl fmt::Display for SymbolSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_text() {
            Some(t) => f.write_str(&t),
            None => {
                let mut first = true;
                for &id in &self.data {
                    if !first {
                        f.write_str(" ")?;
                    }
                    f.write_str(self.alphabet.name(id))?;
                    first = false;
                }
                Ok(())
            }
        }
    }
}

/// Incremental builder used by streaming ingestion.
#[derive(Debug, Clone)]
pub struct SeriesBuilder {
    alphabet: Arc<Alphabet>,
    data: Vec<SymbolId>,
}

impl SeriesBuilder {
    /// Starts an empty series over `alphabet`.
    pub fn new(alphabet: Arc<Alphabet>) -> Self {
        SeriesBuilder {
            alphabet,
            data: Vec::new(),
        }
    }

    /// Starts with capacity for `n` timestamps.
    pub fn with_capacity(alphabet: Arc<Alphabet>, n: usize) -> Self {
        SeriesBuilder {
            alphabet,
            data: Vec::with_capacity(n),
        }
    }

    /// Appends a symbol by id.
    pub fn push(&mut self, id: SymbolId) -> Result<()> {
        self.alphabet.check(id)?;
        self.data.push(id);
        Ok(())
    }

    /// Appends a symbol by name.
    pub fn push_name(&mut self, name: &str) -> Result<()> {
        let id = self.alphabet.lookup(name)?;
        self.data.push(id);
        Ok(())
    }

    /// Timestamps appended so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Finalizes the series.
    pub fn finish(self) -> SymbolSeries {
        SymbolSeries {
            alphabet: self.alphabet,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_series() -> SymbolSeries {
        let a = Alphabet::latin(3).expect("ok");
        SymbolSeries::parse("abcabbabcb", &a).expect("ok")
    }

    #[test]
    fn parse_and_render_round_trip() {
        let s = paper_series();
        assert_eq!(s.len(), 10);
        assert_eq!(s.sigma(), 3);
        assert_eq!(s.to_text().expect("single chars"), "abcabbabcb");
        assert_eq!(s.to_string(), "abcabbabcb");
    }

    #[test]
    fn parse_reports_bad_position() {
        let a = Alphabet::latin(2).expect("ok");
        match SymbolSeries::parse("abz", &a) {
            Err(SeriesError::Parse { position, .. }) => assert_eq!(position, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn projections_match_paper_section_2_2() {
        // pi(4,1)(abcabbabcb) = bbb and pi(3,0) = aaab.
        let s = paper_series();
        let a = s.alphabet().clone();
        let text = |p, l| -> String {
            s.projection(p, l)
                .map(|id| a.name(id).chars().next().expect("ch"))
                .collect()
        };
        assert_eq!(text(4, 1), "bbb");
        assert_eq!(text(3, 0), "aaab");
        assert_eq!(projection_len(10, 4, 1), 3);
        assert_eq!(projection_len(10, 3, 0), 4);
    }

    #[test]
    fn f2_matches_paper_examples() {
        // T = abbaaabaa: F2(a) = 3, F2(b) = 1 on the raw string (p=1, l=0).
        let alpha = Alphabet::latin(2).expect("ok");
        let t = SymbolSeries::parse("abbaaabaa", &alpha).expect("ok");
        let a = alpha.lookup("a").expect("ok");
        let b = alpha.lookup("b").expect("ok");
        assert_eq!(t.f2_projected(a, 1, 0), 3);
        assert_eq!(t.f2_projected(b, 1, 0), 1);
    }

    #[test]
    fn confidence_matches_paper_section_2_2() {
        // F2(a, pi(3,0)) / (ceil(10/3) - 1) = 2/3; b at (3,1) has confidence 1.
        let s = paper_series();
        let a = s.alphabet().lookup("a").expect("ok");
        let b = s.alphabet().lookup("b").expect("ok");
        assert_eq!(s.f2_projected(a, 3, 0), 2);
        assert!((s.confidence(a, 3, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.f2_projected(b, 3, 1), 2);
        assert!((s.confidence(b, 3, 1) - 1.0).abs() < 1e-12);
        // b is also periodic with period 4 at position 1 ("bbb").
        assert!((s.confidence(b, 4, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lag_matches_equals_sum_of_phase_f2() {
        let s = paper_series();
        for sym in s.alphabet().ids().collect::<Vec<_>>() {
            for p in 1..s.len() {
                let total: usize = (0..p).map(|l| s.f2_projected(sym, p, l)).sum();
                assert_eq!(s.lag_matches(sym, p), total, "sym={sym} p={p}");
            }
        }
    }

    #[test]
    fn indicator_and_occurrences_are_consistent() {
        let s = paper_series();
        let b = s.alphabet().lookup("b").expect("ok");
        let ind = s.indicator(b);
        let occ = s.occurrences(b);
        assert_eq!(occ, vec![1, 4, 5, 7, 9]);
        for (i, &v) in ind.iter().enumerate() {
            assert_eq!(v == 1, occ.contains(&i));
        }
        assert_eq!(s.histogram(), vec![3, 5, 2]);
    }

    #[test]
    fn builder_accumulates_and_validates() {
        let a = Alphabet::latin(3).expect("ok");
        let mut b = SeriesBuilder::with_capacity(a.clone(), 4);
        assert!(b.is_empty());
        b.push(SymbolId(0)).expect("ok");
        b.push_name("c").expect("ok");
        assert!(b.push(SymbolId(7)).is_err());
        assert!(b.push_name("z").is_err());
        assert_eq!(b.len(), 2);
        let s = b.finish();
        assert_eq!(s.to_text().expect("txt"), "ac");
    }

    #[test]
    fn from_ids_validates() {
        let a = Alphabet::latin(2).expect("ok");
        assert!(SymbolSeries::from_ids(vec![SymbolId(0), SymbolId(5)], a.clone()).is_err());
        let s = SymbolSeries::from_ids(vec![SymbolId(1), SymbolId(0)], a).expect("ok");
        assert_eq!(s.to_text().expect("txt"), "ba");
    }

    #[test]
    fn slice_and_windows() {
        let s = paper_series(); // abcabbabcb
        let mid = s.slice(3..7);
        assert_eq!(mid.to_text().expect("txt"), "abba");
        assert_eq!(mid.alphabet().len(), 3);
        let all: Vec<String> = s.windows(4, 3).map(|w| w.to_text().expect("txt")).collect();
        assert_eq!(all, vec!["abca", "abba", "abcb"]);
        // Width equal to length yields one window; larger yields none.
        assert_eq!(s.windows(10, 1).count(), 1);
        assert_eq!(s.windows(11, 1).count(), 0);
        // Windowed confidence localizes structure.
        let head = s.slice(0..9);
        let a = s.alphabet().lookup("a").expect("a");
        assert!(head.confidence(a, 3, 0) >= s.confidence(a, 3, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_bounds_panics() {
        let _ = paper_series().slice(5..20);
    }

    #[test]
    fn empty_series_edges() {
        let a = Alphabet::latin(2).expect("ok");
        let s = SymbolSeries::parse("", &a).expect("ok");
        assert!(s.is_empty());
        assert_eq!(s.f2_projected(SymbolId(0), 3, 0), 0);
        assert_eq!(s.confidence(SymbolId(0), 3, 0), 0.0);
        assert_eq!(projection_len(0, 3, 0), 0);
        assert_eq!(pair_denominator(0, 3, 0), 0);
    }

    #[test]
    fn display_multi_char_names() {
        let a = Alphabet::from_symbols(["low", "high"]).expect("ok");
        let s = SymbolSeries::from_ids(vec![SymbolId(0), SymbolId(1)], a).expect("ok");
        assert_eq!(s.to_text(), None);
        assert_eq!(s.to_string(), "low high");
    }
}
