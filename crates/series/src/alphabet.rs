//! Interned symbol alphabets.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Result, SeriesError};
use crate::symbol::SymbolId;

/// A finite, ordered set of named symbols.
///
/// The order fixes the paper's "arbitrary ordering `s_0, s_1, ..`" (step 1 of
/// the algorithm in Fig. 2): symbol `k` maps to the binary code of `2^k`.
/// Alphabets are immutable once built and cheaply shared via [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: HashMap<String, SymbolId>,
}

impl Alphabet {
    /// Builds an alphabet from symbol names in order.
    pub fn from_symbols<I, S>(symbols: I) -> Result<Arc<Self>>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names = Vec::new();
        let mut by_name = HashMap::new();
        for s in symbols {
            let name: String = s.into();
            let id = SymbolId::from_index(names.len());
            if by_name.insert(name.clone(), id).is_some() {
                return Err(SeriesError::DuplicateSymbol(name));
            }
            names.push(name);
        }
        if names.is_empty() {
            return Err(SeriesError::EmptyAlphabet);
        }
        Ok(Arc::new(Alphabet { names, by_name }))
    }

    /// The alphabet `a, b, c, ...` of `size` single-letter symbols
    /// (at most 26), matching the paper's examples and its five
    /// discretization levels `a..e`.
    pub fn latin(size: usize) -> Result<Arc<Self>> {
        if size == 0 || size > 26 {
            return Err(SeriesError::InvalidGenerator(format!(
                "latin alphabet size must be 1..=26, got {size}"
            )));
        }
        Self::from_symbols((0..size).map(|i| ((b'a' + i as u8) as char).to_string()))
    }

    /// Infers a single-character alphabet from text: the distinct
    /// non-whitespace characters, in sorted order (so the mapping is
    /// deterministic regardless of first-appearance order).
    pub fn infer_from_text(text: &str) -> Result<Arc<Self>> {
        let mut chars: Vec<char> = text.chars().filter(|c| !c.is_whitespace()).collect();
        chars.sort_unstable();
        chars.dedup();
        Self::from_symbols(chars.into_iter().map(|c| c.to_string()))
    }

    /// Symbol names in id order (the alphabet's complete definition;
    /// used by session snapshots to make serialized state self-contained).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of symbols (the paper's `sigma`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a symbol.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a symbol up by name.
    pub fn lookup(&self, name: &str) -> Result<SymbolId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SeriesError::UnknownSymbol(name.to_string()))
    }

    /// Looks a single-character symbol up.
    pub fn lookup_char(&self, c: char) -> Result<SymbolId> {
        let mut buf = [0u8; 4];
        self.lookup(c.encode_utf8(&mut buf))
    }

    /// Iterates over `(id, name)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId::from_index(i), n.as_str()))
    }

    /// All symbol ids in order.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.len()).map(SymbolId::from_index)
    }

    /// Validates that `id` belongs to this alphabet.
    pub fn check(&self, id: SymbolId) -> Result<()> {
        if id.index() < self.len() {
            Ok(())
        } else {
            Err(SeriesError::SymbolOutOfRange {
                index: id.index(),
                alphabet: self.len(),
            })
        }
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_interning() {
        let a = Alphabet::from_symbols(["low", "mid", "high"]).expect("ok");
        assert_eq!(a.len(), 3);
        assert_eq!(a.lookup("mid").expect("ok"), SymbolId(1));
        assert_eq!(a.name(SymbolId(2)), "high");
        assert_eq!(a.to_string(), "{low, mid, high}");
    }

    #[test]
    fn latin_alphabet_matches_paper_levels() {
        let a = Alphabet::latin(5).expect("ok");
        assert_eq!(a.name(SymbolId(0)), "a");
        assert_eq!(a.name(SymbolId(4)), "e");
        assert_eq!(a.lookup_char('c').expect("ok"), SymbolId(2));
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(matches!(
            Alphabet::from_symbols(["a", "a"]),
            Err(SeriesError::DuplicateSymbol(_))
        ));
        assert!(matches!(
            Alphabet::from_symbols(Vec::<String>::new()),
            Err(SeriesError::EmptyAlphabet)
        ));
        assert!(Alphabet::latin(0).is_err());
        assert!(Alphabet::latin(27).is_err());
    }

    #[test]
    fn unknown_lookups_fail() {
        let a = Alphabet::latin(3).expect("ok");
        assert!(a.lookup("z").is_err());
        assert!(a.lookup_char('q').is_err());
        assert!(a.check(SymbolId(3)).is_err());
        assert!(a.check(SymbolId(2)).is_ok());
    }

    #[test]
    fn inference_is_sorted_and_deterministic() {
        let a = Alphabet::infer_from_text("cab\ncba b").expect("ok");
        assert_eq!(a.len(), 3);
        assert_eq!(a.name(SymbolId(0)), "a");
        assert_eq!(a.name(SymbolId(2)), "c");
        assert!(Alphabet::infer_from_text("  \n ").is_err());
    }

    #[test]
    fn iteration_is_in_order() {
        let a = Alphabet::latin(4).expect("ok");
        let names: Vec<&str> = a.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        let ids: Vec<usize> = a.ids().map(|i| i.index()).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
    }
}
