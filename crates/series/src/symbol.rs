//! Symbol identifiers.

use std::fmt;

/// A compact identifier for one symbol of an [`crate::alphabet::Alphabet`].
///
/// The paper indexes symbols `s_0 .. s_{sigma-1}`; a `SymbolId` is exactly
/// that index. `u16` bounds the alphabet at 65 536 symbols, far beyond the
/// discretization levels (typically 5-10) the paper works with, while
/// keeping series storage at two bytes per timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u16);

impl SymbolId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `SymbolId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u16::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index <= u16::MAX as usize,
            "symbol index {index} exceeds u16 range"
        );
        SymbolId(index as u16)
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u16> for SymbolId {
    fn from(v: u16) -> Self {
        SymbolId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        assert_eq!(SymbolId::from_index(5).index(), 5);
        assert_eq!(SymbolId(9).index(), 9);
    }

    #[test]
    #[should_panic(expected = "exceeds u16")]
    fn rejects_oversized_index() {
        let _ = SymbolId::from_index(100_000);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(SymbolId(3).to_string(), "s3");
    }
}
