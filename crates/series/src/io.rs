//! Series I/O: compact text format, numeric CSV, and a streaming
//! one-pass reader.
//!
//! The streaming reader exists so the miner's one-pass claim extends to
//! disk-resident data: symbols are decoded and consumed as they are read,
//! never materializing the file twice.

use std::io::{BufRead, Write};
use std::sync::Arc;

use crate::alphabet::Alphabet;
use crate::error::{Result, SeriesError};
use crate::series::{SeriesBuilder, SymbolSeries};
use crate::symbol::SymbolId;

/// Writes a series as one character per symbol (requires single-character
/// symbol names), with a trailing newline.
pub fn write_text<W: Write>(series: &SymbolSeries, mut w: W) -> Result<()> {
    let text = series.to_text().ok_or_else(|| {
        SeriesError::Io("series alphabet has multi-character names; use write_ids".into())
    })?;
    w.write_all(text.as_bytes())?;
    w.write_all(b"\n")?;
    Ok(())
}

/// Reads a one-character-per-symbol series, ignoring ASCII whitespace.
pub fn read_text<R: BufRead>(mut r: R, alphabet: &Arc<Alphabet>) -> Result<SymbolSeries> {
    let mut builder = SeriesBuilder::new(Arc::clone(alphabet));
    let mut line = String::new();
    let mut position = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        for c in line.chars() {
            if c.is_ascii_whitespace() {
                continue;
            }
            let id = alphabet.lookup_char(c).map_err(|_| SeriesError::Parse {
                position,
                message: format!("character {c:?} is not in the alphabet"),
            })?;
            builder.push(id)?;
            position += 1;
        }
    }
    Ok(builder.finish())
}

/// Writes numeric values one per line.
pub fn write_values<W: Write>(values: &[f64], mut w: W) -> Result<()> {
    for v in values {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Reads numeric values, one per line; for comma-separated lines the *last*
/// field is taken (timestamp columns are common in exported measurements).
pub fn read_values<R: BufRead>(r: R) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let field = trimmed.rsplit(',').next().unwrap_or(trimmed).trim();
        let v: f64 = field.parse().map_err(|_| SeriesError::Parse {
            position: lineno,
            message: format!("cannot parse {field:?} as a number"),
        })?;
        out.push(v);
    }
    Ok(out)
}

/// A streaming symbol decoder over a [`BufRead`], yielding one `SymbolId`
/// per non-whitespace character in a single pass.
#[derive(Debug)]
pub struct SymbolStream<R: BufRead> {
    reader: R,
    alphabet: Arc<Alphabet>,
    buf: Vec<u8>,
    pos: usize,
    consumed: usize,
}

impl<R: BufRead> SymbolStream<R> {
    /// Wraps `reader` with the decoding alphabet.
    pub fn new(reader: R, alphabet: Arc<Alphabet>) -> Self {
        SymbolStream {
            reader,
            alphabet,
            buf: Vec::new(),
            pos: 0,
            consumed: 0,
        }
    }

    /// Symbols yielded so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    fn refill(&mut self) -> std::io::Result<bool> {
        self.buf.clear();
        self.pos = 0;
        let n = self.reader.read_until(b'\n', &mut self.buf)?;
        Ok(n > 0)
    }
}

impl<R: BufRead> Iterator for SymbolStream<R> {
    type Item = Result<SymbolId>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            while self.pos < self.buf.len() {
                let byte = self.buf[self.pos];
                self.pos += 1;
                if byte.is_ascii_whitespace() {
                    continue;
                }
                let c = byte as char;
                let item = self
                    .alphabet
                    .lookup_char(c)
                    .map_err(|_| SeriesError::Parse {
                        position: self.consumed,
                        message: format!("character {c:?} is not in the alphabet"),
                    });
                if item.is_ok() {
                    self.consumed += 1;
                }
                return Some(item);
            }
            match self.refill() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => return Some(Err(e.into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn text_round_trip() {
        let a = Alphabet::latin(3).expect("ok");
        let s = SymbolSeries::parse("abcabbabcb", &a).expect("ok");
        let mut buf = Vec::new();
        write_text(&s, &mut buf).expect("ok");
        let back = read_text(Cursor::new(buf), &a).expect("ok");
        assert_eq!(back, s);
    }

    #[test]
    fn read_text_skips_whitespace_and_lines() {
        let a = Alphabet::latin(2).expect("ok");
        let s = read_text(Cursor::new("ab\n ba\nb b\n"), &a).expect("ok");
        assert_eq!(s.to_text().expect("txt"), "abbabb");
    }

    #[test]
    fn read_text_rejects_bad_symbols() {
        let a = Alphabet::latin(2).expect("ok");
        assert!(read_text(Cursor::new("abz"), &a).is_err());
    }

    #[test]
    fn values_round_trip_and_csv_last_field() {
        let vals = [1.5, -2.0, 3.25];
        let mut buf = Vec::new();
        write_values(&vals, &mut buf).expect("ok");
        let back = read_values(Cursor::new(buf)).expect("ok");
        assert_eq!(back, vals);

        let csv = "# header\n2021-01-01,100.5\n2021-01-02,99\n\n";
        let back = read_values(Cursor::new(csv)).expect("ok");
        assert_eq!(back, vec![100.5, 99.0]);
        assert!(read_values(Cursor::new("abc")).is_err());
    }

    #[test]
    fn symbol_stream_is_single_pass_and_lazy() {
        let a = Alphabet::latin(3).expect("ok");
        let mut stream = SymbolStream::new(Cursor::new("ab\ncab"), a);
        let ids: Vec<SymbolId> = stream.by_ref().collect::<Result<Vec<_>>>().expect("ok");
        assert_eq!(
            ids,
            vec![
                SymbolId(0),
                SymbolId(1),
                SymbolId(2),
                SymbolId(0),
                SymbolId(1)
            ]
        );
        assert_eq!(stream.consumed(), 5);
    }

    #[test]
    fn symbol_stream_surfaces_errors_with_position() {
        let a = Alphabet::latin(2).expect("ok");
        let mut stream = SymbolStream::new(Cursor::new("abx"), a);
        assert!(stream.next().expect("some").is_ok());
        assert!(stream.next().expect("some").is_ok());
        match stream.next().expect("some") {
            Err(SeriesError::Parse { position, .. }) => assert_eq!(position, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn write_text_rejects_multichar_names() {
        let a = Alphabet::from_symbols(["low", "high"]).expect("ok");
        let s = SymbolSeries::from_ids(vec![SymbolId(0)], a).expect("ok");
        assert!(write_text(&s, Vec::new()).is_err());
    }
}
