//! Error type for the series substrate.

use std::fmt;

/// Errors from alphabet construction, parsing, discretization, or I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// An alphabet was built with no symbols.
    EmptyAlphabet,
    /// A symbol name appeared twice while building an alphabet.
    DuplicateSymbol(String),
    /// A name was looked up that the alphabet does not contain.
    UnknownSymbol(String),
    /// A symbol id referenced an index outside the alphabet.
    SymbolOutOfRange {
        /// Offending index.
        index: usize,
        /// Alphabet size.
        alphabet: usize,
    },
    /// Parsing a textual series failed at a position.
    Parse {
        /// Zero-based position of the offending token.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// Discretizer configuration is invalid (e.g. zero levels, bad bounds).
    InvalidDiscretizer(String),
    /// Noise ratio must lie in `[0, 1]`.
    InvalidNoiseRatio(f64),
    /// Generator configuration is invalid.
    InvalidGenerator(String),
    /// Underlying I/O failure.
    Io(String),
    /// A series file's structure is invalid (bad magic, mangled header,
    /// out-of-range symbol id, garbage field). `offset` is the byte offset
    /// of the offending data.
    CorruptSeriesFile {
        /// Byte offset where corruption was detected.
        offset: u64,
        /// Human-readable description.
        message: String,
    },
    /// A series file ended before the length promised by its header.
    TruncatedSeriesFile {
        /// Bytes the header implies the file must hold.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A series file's FNV-1a trailer disagrees with its contents.
    SeriesChecksumMismatch {
        /// Checksum stored in the trailer.
        expected: u64,
        /// Checksum computed over the file.
        actual: u64,
    },
    /// A series file was written by an unsupported format version.
    UnsupportedSeriesVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::EmptyAlphabet => {
                write!(f, "alphabet must contain at least one symbol")
            }
            SeriesError::DuplicateSymbol(s) => write!(f, "duplicate symbol {s:?} in alphabet"),
            SeriesError::UnknownSymbol(s) => write!(f, "symbol {s:?} is not in the alphabet"),
            SeriesError::SymbolOutOfRange { index, alphabet } => {
                write!(
                    f,
                    "symbol index {index} out of range for alphabet of size {alphabet}"
                )
            }
            SeriesError::Parse { position, message } => {
                write!(f, "parse error at position {position}: {message}")
            }
            SeriesError::InvalidDiscretizer(m) => write!(f, "invalid discretizer: {m}"),
            SeriesError::InvalidNoiseRatio(r) => write!(f, "noise ratio {r} is outside [0, 1]"),
            SeriesError::InvalidGenerator(m) => write!(f, "invalid generator: {m}"),
            SeriesError::Io(m) => write!(f, "I/O error: {m}"),
            SeriesError::CorruptSeriesFile { offset, message } => {
                write!(f, "corrupt series file at byte {offset}: {message}")
            }
            SeriesError::TruncatedSeriesFile { expected, actual } => {
                write!(
                    f,
                    "truncated series file: header promises {expected} bytes, found {actual}"
                )
            }
            SeriesError::SeriesChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "series file checksum mismatch: trailer {expected:#018x}, computed {actual:#018x}"
                )
            }
            SeriesError::UnsupportedSeriesVersion { found, supported } => {
                write!(
                    f,
                    "series file version {found} is not supported (newest readable: {supported})"
                )
            }
        }
    }
}

impl std::error::Error for SeriesError {}

impl From<std::io::Error> for SeriesError {
    fn from(e: std::io::Error) -> Self {
        SeriesError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SeriesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_data() {
        assert!(SeriesError::UnknownSymbol("zz".into())
            .to_string()
            .contains("zz"));
        assert!(SeriesError::SymbolOutOfRange {
            index: 9,
            alphabet: 5
        }
        .to_string()
        .contains('9'));
        assert!(SeriesError::InvalidNoiseRatio(1.5)
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn io_conversion_preserves_message() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let e: SeriesError = io.into();
        assert!(e.to_string().contains("missing file"));
    }
}
