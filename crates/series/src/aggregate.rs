//! Time-bucket aggregation of raw measurements.
//!
//! Both of the paper's datasets are *aggregates* before discretization —
//! "transactions per hour", "power consumption per day". This module turns
//! raw event streams (timestamped unit events or sampled values) into
//! fixed-width bucket series ready for a [`crate::discretize::Discretizer`].

use crate::error::{Result, SeriesError};

/// How values falling in one bucket combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum of values (e.g. transaction counts).
    Sum,
    /// Arithmetic mean (e.g. temperature).
    Mean,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Number of values in the bucket (ignores magnitudes).
    Count,
}

/// Aggregates `values[i]` sampled at consecutive instants into buckets of
/// `width` samples. A trailing partial bucket is aggregated too.
///
/// ```
/// use periodica_series::aggregate::{bucket_values, Aggregation};
///
/// // Per-minute counts -> hourly sums (the paper's "transactions per hour").
/// let per_minute = vec![1.0; 150];
/// let hourly = bucket_values(&per_minute, 60, Aggregation::Sum)?;
/// assert_eq!(hourly, vec![60.0, 60.0, 30.0]);
/// # Ok::<(), periodica_series::SeriesError>(())
/// ```
pub fn bucket_values(values: &[f64], width: usize, how: Aggregation) -> Result<Vec<f64>> {
    if width == 0 {
        return Err(SeriesError::InvalidGenerator(
            "bucket width must be positive".into(),
        ));
    }
    Ok(values
        .chunks(width)
        .map(|chunk| combine(chunk.iter().copied(), how))
        .collect())
}

/// Aggregates timestamped events into buckets of `width` time units
/// covering `[0, horizon)`: `out[b]` combines `value` for events with
/// `floor(t / width) == b`. Buckets with no events yield the aggregation's
/// identity (0 for Sum/Count/Mean, NaN-free minima/maxima of nothing are 0).
pub fn bucket_events(events: &[(u64, f64)], width: u64, horizon: u64) -> Result<Vec<Vec<f64>>> {
    if width == 0 {
        return Err(SeriesError::InvalidGenerator(
            "bucket width must be positive".into(),
        ));
    }
    let buckets = horizon.div_ceil(width) as usize;
    let mut out = vec![Vec::new(); buckets];
    for &(t, v) in events {
        if t >= horizon {
            return Err(SeriesError::InvalidGenerator(format!(
                "event at t={t} beyond horizon {horizon}"
            )));
        }
        out[(t / width) as usize].push(v);
    }
    Ok(out)
}

/// Aggregates timestamped events directly into a numeric bucket series.
pub fn bucket_event_series(
    events: &[(u64, f64)],
    width: u64,
    horizon: u64,
    how: Aggregation,
) -> Result<Vec<f64>> {
    Ok(bucket_events(events, width, horizon)?
        .into_iter()
        .map(|vs| combine(vs.into_iter(), how))
        .collect())
}

fn combine(values: impl Iterator<Item = f64>, how: Aggregation) -> f64 {
    let mut count = 0usize;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        count += 1;
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    match how {
        Aggregation::Sum => sum,
        Aggregation::Count => count as f64,
        Aggregation::Mean => {
            if count == 0 {
                0.0
            } else {
                sum / count as f64
            }
        }
        Aggregation::Max => {
            if count == 0 {
                0.0
            } else {
                max
            }
        }
        Aggregation::Min => {
            if count == 0 {
                0.0
            } else {
                min
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_buckets_cover_all_aggregations() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(
            bucket_values(&v, 2, Aggregation::Sum).expect("ok"),
            vec![3.0, 7.0, 5.0]
        );
        assert_eq!(
            bucket_values(&v, 2, Aggregation::Mean).expect("ok"),
            vec![1.5, 3.5, 5.0]
        );
        assert_eq!(
            bucket_values(&v, 2, Aggregation::Max).expect("ok"),
            vec![2.0, 4.0, 5.0]
        );
        assert_eq!(
            bucket_values(&v, 2, Aggregation::Min).expect("ok"),
            vec![1.0, 3.0, 5.0]
        );
        assert_eq!(
            bucket_values(&v, 2, Aggregation::Count).expect("ok"),
            vec![2.0, 2.0, 1.0]
        );
        assert!(bucket_values(&v, 0, Aggregation::Sum).is_err());
    }

    #[test]
    fn event_buckets_build_hourly_counts() {
        // Events at "minutes"; hourly (width 60) transaction counts.
        let events: Vec<(u64, f64)> = vec![(0, 1.0), (59, 1.0), (60, 1.0), (150, 1.0), (179, 1.0)];
        let counts = bucket_event_series(&events, 60, 240, Aggregation::Count).expect("ok");
        assert_eq!(counts, vec![2.0, 1.0, 2.0, 0.0]);
        let sums = bucket_event_series(&events, 60, 240, Aggregation::Sum).expect("ok");
        assert_eq!(sums, counts); // unit values
    }

    #[test]
    fn events_beyond_horizon_are_rejected() {
        assert!(bucket_events(&[(100, 1.0)], 10, 100).is_err());
        assert!(bucket_events(&[], 0, 100).is_err());
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(bucket_values(&[], 4, Aggregation::Sum)
            .expect("ok")
            .is_empty());
        let empty = bucket_event_series(&[], 10, 50, Aggregation::Mean).expect("ok");
        assert_eq!(empty, vec![0.0; 5]);
    }

    #[test]
    fn pipeline_to_discretized_series() {
        use crate::discretize::{Breakpoints, Discretizer};
        use crate::Alphabet;
        // Raw per-minute sales -> hourly sums -> paper levels.
        let per_minute: Vec<f64> = (0..240).map(|i| if i < 120 { 0.0 } else { 5.0 }).collect();
        let hourly = bucket_values(&per_minute, 60, Aggregation::Sum).expect("ok");
        assert_eq!(hourly, vec![0.0, 0.0, 300.0, 300.0]);
        let alphabet = Alphabet::latin(5).expect("ok");
        let levels = Breakpoints::new(vec![1.0, 200.0, 400.0, 600.0]).expect("ok");
        let series = levels.discretize(&hourly, &alphabet).expect("ok");
        assert_eq!(series.to_text().expect("txt"), "aacc");
    }
}
