//! Descriptive statistics of symbol series.
//!
//! Light-weight characterization used by the CLI and the experiment
//! harness: how concentrated the symbol distribution is (entropy), how
//! sticky consecutive symbols are (transition structure), and per-symbol
//! densities — the quantities that predict how sharp phase-blind candidate
//! bounds will be (see `periodica-core::online`).

use crate::series::SymbolSeries;
use crate::symbol::SymbolId;

/// Summary statistics of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// Series length.
    pub len: usize,
    /// Alphabet size.
    pub sigma: usize,
    /// Occurrence count per symbol.
    pub histogram: Vec<usize>,
    /// Shannon entropy of the symbol distribution, in bits.
    pub entropy_bits: f64,
    /// Fraction of adjacent positions with equal symbols (`F2` summed over
    /// the alphabet, normalized) — the lag-1 self-similarity.
    pub stickiness: f64,
}

impl SeriesStats {
    /// Computes the summary in one pass.
    pub fn compute(series: &SymbolSeries) -> Self {
        let len = series.len();
        let sigma = series.sigma();
        let histogram = series.histogram();
        let entropy_bits = entropy_bits(&histogram, len);
        let equal_adjacent = if len < 2 {
            0
        } else {
            series.symbols().windows(2).filter(|w| w[0] == w[1]).count()
        };
        let stickiness = if len < 2 {
            0.0
        } else {
            equal_adjacent as f64 / (len - 1) as f64
        };
        SeriesStats {
            len,
            sigma,
            histogram,
            entropy_bits,
            stickiness,
        }
    }

    /// Density of one symbol (occurrences / length).
    pub fn density(&self, symbol: SymbolId) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.histogram[symbol.index()] as f64 / self.len as f64
        }
    }

    /// The most frequent symbol (smallest index on ties), if any symbol
    /// occurs.
    pub fn dominant(&self) -> Option<SymbolId> {
        self.histogram
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| SymbolId::from_index(i))
    }
}

/// Shannon entropy in bits of a count histogram.
pub fn entropy_bits(histogram: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    histogram
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// First-order transition counts: `out[a][b]` = number of positions where
/// symbol `a` is immediately followed by `b`.
pub fn transition_counts(series: &SymbolSeries) -> Vec<Vec<usize>> {
    let sigma = series.sigma();
    let mut out = vec![vec![0usize; sigma]; sigma];
    for w in series.symbols().windows(2) {
        out[w[0].index()][w[1].index()] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn series(text: &str, sigma: usize) -> SymbolSeries {
        let a = Alphabet::latin(sigma).expect("alphabet");
        SymbolSeries::parse(text, &a).expect("series")
    }

    #[test]
    fn uniform_series_has_log_sigma_entropy() {
        let s = series(&"abcd".repeat(100), 4);
        let stats = SeriesStats::compute(&s);
        assert!((stats.entropy_bits - 2.0).abs() < 1e-12);
        assert_eq!(stats.stickiness, 0.0);
        assert_eq!(stats.dominant(), Some(SymbolId(0)));
        assert!((stats.density(SymbolId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_entropy_full_stickiness() {
        let s = series("aaaaaaaa", 2);
        let stats = SeriesStats::compute(&s);
        assert_eq!(stats.entropy_bits, 0.0);
        assert_eq!(stats.stickiness, 1.0);
        assert_eq!(stats.dominant(), Some(SymbolId(0)));
        assert_eq!(stats.density(SymbolId(1)), 0.0);
    }

    #[test]
    fn transition_counts_are_exact() {
        let s = series("aabab", 2);
        let t = transition_counts(&s);
        assert_eq!(t[0][0], 1); // aa
        assert_eq!(t[0][1], 2); // ab twice
        assert_eq!(t[1][0], 1); // ba
        assert_eq!(t[1][1], 0);
        let total: usize = t.iter().flatten().sum();
        assert_eq!(total, s.len() - 1);
    }

    #[test]
    fn skewed_distribution_lowers_entropy() {
        let balanced = SeriesStats::compute(&series(&"ab".repeat(100), 2));
        let skewed = SeriesStats::compute(&series(&format!("{}b", "a".repeat(199)), 2));
        assert!(skewed.entropy_bits < balanced.entropy_bits);
        assert!(balanced.entropy_bits <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = series("", 3);
        let stats = SeriesStats::compute(&s);
        assert_eq!(stats.entropy_bits, 0.0);
        assert_eq!(stats.stickiness, 0.0);
        assert_eq!(stats.dominant(), None);
        assert_eq!(stats.density(SymbolId(0)), 0.0);
        assert!(transition_counts(&s).iter().flatten().all(|&c| c == 0));
    }
}
