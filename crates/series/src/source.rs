//! Out-of-core series access: the [`SeriesSource`] abstraction plus an
//! on-disk series format with a checksummed streaming reader and writer.
//!
//! The paper's one-pass claim stops at RAM size if the whole series must be
//! resident. This module removes that limit: a [`FileSeriesReader`] streams a
//! disk-resident series in caller-sized chunks through the same code paths
//! that consume in-memory series, and [`for_each_chunk`] supplies the
//! overlap carry that lag-window consumers (autocorrelation, pair matching)
//! need at chunk boundaries.
//!
//! # On-disk format
//!
//! Two self-describing encodings, both ending in an FNV-1a 64 trailer over
//! every preceding byte (the same integrity scheme as the PSNP snapshot
//! format):
//!
//! * **Binary** (`PSRB`, streamed): magic, `u32` version, `u8` symbol width
//!   (1 when `sigma <= 256`, else 2), `u32` alphabet size, per-symbol
//!   `u16`-length-prefixed UTF-8 names, `u64` series length, then the
//!   payload (one little-endian id per symbol), then the trailer.
//! * **Text** (`PSRT`, a convenience for small fixtures; the reader
//!   materializes it): a `PSRT 1` header line, `alphabet`/`length` lines,
//!   80-column symbol-character lines, and an `fnv1a <hex>` trailer line.
//!
//! The binary reader verifies the trailer *incrementally*: a full sequential
//! pass (which the out-of-core miner always performs first) costs no extra
//! read, and corruption surfaces as a typed
//! [`SeriesError::SeriesChecksumMismatch`] before any result is trusted.
//! Structural damage — bad magic, mangled header, out-of-range ids, missing
//! bytes — is rejected eagerly with byte-offset context.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::alphabet::Alphabet;
use crate::error::{Result, SeriesError};
use crate::series::SymbolSeries;
use crate::symbol::SymbolId;

/// Magic prefix of the binary series format.
pub const BINARY_MAGIC: [u8; 4] = *b"PSRB";
/// Magic prefix of the text series format.
pub const TEXT_MAGIC: [u8; 4] = *b"PSRT";
/// Newest format version this build reads and the only one it writes.
pub const FORMAT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Abstract random-access view of a symbol series, resident or disk-backed.
///
/// Implementations serve reads of any `(at, max)` window, but the intended
/// access pattern is sequential front-to-back passes: [`FileSeriesReader`]
/// optimizes that case (no seeks, incremental checksum verification) and the
/// out-of-core miner performs nothing else.
pub trait SeriesSource {
    /// Total symbols in the series.
    fn series_len(&self) -> usize;

    /// The series' alphabet.
    fn alphabet(&self) -> &Arc<Alphabet>;

    /// Reads up to `max` symbols starting at index `at` into `buf` (cleared
    /// first) and returns the count actually read: `min(max, len - at)`, or
    /// 0 once `at >= len`.
    fn read_at(&mut self, at: usize, max: usize, buf: &mut Vec<SymbolId>) -> Result<usize>;
}

/// [`SeriesSource`] over an in-memory [`SymbolSeries`].
#[derive(Debug)]
pub struct MemorySource<'a> {
    series: &'a SymbolSeries,
}

impl<'a> MemorySource<'a> {
    /// Wraps a resident series.
    pub fn new(series: &'a SymbolSeries) -> Self {
        MemorySource { series }
    }
}

impl<'a> From<&'a SymbolSeries> for MemorySource<'a> {
    fn from(series: &'a SymbolSeries) -> Self {
        MemorySource::new(series)
    }
}

impl SeriesSource for MemorySource<'_> {
    fn series_len(&self) -> usize {
        self.series.len()
    }

    fn alphabet(&self) -> &Arc<Alphabet> {
        self.series.alphabet()
    }

    fn read_at(&mut self, at: usize, max: usize, buf: &mut Vec<SymbolId>) -> Result<usize> {
        buf.clear();
        let n = self.series.len();
        if at >= n {
            return Ok(0);
        }
        let count = max.min(n - at);
        buf.extend_from_slice(&self.series.symbols()[at..at + count]);
        Ok(count)
    }
}

/// One chunk handed to a [`for_each_chunk`] callback: `carry_len` symbols of
/// retained context (the symbols immediately preceding `start`) followed by
/// the fresh symbols of this chunk, contiguous in one buffer.
#[derive(Debug, Clone, Copy)]
pub struct ChunkView<'a> {
    buf: &'a [SymbolId],
    carry_len: usize,
    start: usize,
}

impl<'a> ChunkView<'a> {
    /// Carry context: the last `overlap` symbols before [`Self::start`]
    /// (shorter near the front of the series).
    pub fn carry(&self) -> &'a [SymbolId] {
        &self.buf[..self.carry_len]
    }

    /// The fresh symbols of this chunk, series indices
    /// `start .. start + fresh().len()`.
    pub fn fresh(&self) -> &'a [SymbolId] {
        &self.buf[self.carry_len..]
    }

    /// Carry and fresh symbols as one contiguous slice; its first element is
    /// series index `start - carry().len()`.
    pub fn full(&self) -> &'a [SymbolId] {
        self.buf
    }

    /// Global series index of the first *fresh* symbol.
    pub fn start(&self) -> usize {
        self.start
    }
}

/// Drives sequential chunked iteration over a source, retaining an `overlap`
/// carry so lag-`p` consumers (`p <= overlap`) see every cross-boundary pair.
///
/// `chunk` is the fresh-symbol count per callback (the last chunk may be
/// shorter); resident memory is `chunk + overlap` symbols regardless of
/// series length. The error type is generic so core-crate callbacks can
/// return their own error as long as it converts from [`SeriesError`].
pub fn for_each_chunk<S, E, F>(
    source: &mut S,
    chunk: usize,
    overlap: usize,
    mut f: F,
) -> std::result::Result<(), E>
where
    S: SeriesSource + ?Sized,
    E: From<SeriesError>,
    F: FnMut(ChunkView<'_>) -> std::result::Result<(), E>,
{
    let n = source.series_len();
    let chunk = chunk.max(1);
    let mut buf: Vec<SymbolId> = Vec::with_capacity(overlap + chunk);
    let mut fresh: Vec<SymbolId> = Vec::with_capacity(chunk);
    let mut carry_len = 0usize;
    let mut at = 0usize;
    while at < n {
        let got = source.read_at(at, chunk.min(n - at), &mut fresh)?;
        debug_assert!(got > 0, "source returned no symbols before its end");
        buf.truncate(carry_len);
        buf.extend_from_slice(&fresh[..got]);
        f(ChunkView {
            buf: &buf,
            carry_len,
            start: at,
        })?;
        at += got;
        let keep = overlap.min(buf.len());
        let cut = buf.len() - keep;
        buf.copy_within(cut.., 0);
        buf.truncate(keep);
        carry_len = keep;
    }
    Ok(())
}

fn read_exact_at(r: &mut impl Read, buf: &mut [u8], off: u64, total: u64) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SeriesError::TruncatedSeriesFile {
                expected: off + buf.len() as u64,
                actual: total,
            }
        } else {
            SeriesError::Io(e.to_string())
        }
    })
}

struct BinaryState {
    file: BufReader<File>,
    width: usize,
    payload_start: u64,
    /// Symbol index the file cursor currently points at.
    pos: usize,
    /// Length of the prefix (in symbols) folded into `hash` so far.
    hashed: usize,
    /// Running FNV-1a over header + hashed payload prefix.
    hash: u64,
    trailer: u64,
    verified: bool,
    byte_buf: Vec<u8>,
}

enum ReaderKind {
    Binary(BinaryState),
    /// Text files are a small-fixture convenience; the reader materializes
    /// them at open time (checksum verified eagerly).
    Text(Vec<SymbolId>),
}

/// Streaming reader for the on-disk series formats.
///
/// Binary files are read with bounded memory: `read_at` touches only the
/// requested window, and a sequential front-to-back pass additionally folds
/// every byte into the FNV-1a state so the trailer is verified exactly once,
/// at the end of the first full pass, with no dedicated integrity read.
pub struct FileSeriesReader {
    kind: ReaderKind,
    alphabet: Arc<Alphabet>,
    len: usize,
}

impl std::fmt::Debug for FileSeriesReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSeriesReader")
            .field("len", &self.len)
            .field("sigma", &self.alphabet.len())
            .field(
                "format",
                &match self.kind {
                    ReaderKind::Binary(_) => "binary",
                    ReaderKind::Text(_) => "text",
                },
            )
            .finish()
    }
}

impl FileSeriesReader {
    /// Opens a series file, sniffing the format from its magic. Header
    /// structure and file size are validated here; payload integrity is
    /// verified incrementally (binary) or eagerly (text).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path.as_ref())?;
        let total = file.metadata()?.len();
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 4];
        read_exact_at(&mut r, &mut magic, 0, total)?;
        match &magic {
            m if *m == BINARY_MAGIC => Self::open_binary(r, total),
            m if *m == TEXT_MAGIC => Self::open_text(r, total),
            m => Err(SeriesError::CorruptSeriesFile {
                offset: 0,
                message: format!("bad magic {m:?} (expected PSRB or PSRT)"),
            }),
        }
    }

    fn open_binary(mut r: BufReader<File>, total: u64) -> Result<Self> {
        let mut hash = fnv1a(FNV_OFFSET, &BINARY_MAGIC);
        let mut off = 4u64;
        let mut scratch = [0u8; 8];

        let take = |r: &mut BufReader<File>,
                    n: usize,
                    hash: &mut u64,
                    off: &mut u64,
                    scratch: &mut [u8; 8]|
         -> Result<[u8; 8]> {
            read_exact_at(r, &mut scratch[..n], *off, total)?;
            *hash = fnv1a(*hash, &scratch[..n]);
            *off += n as u64;
            let mut out = [0u8; 8];
            out[..n].copy_from_slice(&scratch[..n]);
            Ok(out)
        };

        let version = u32::from_le_bytes(
            take(&mut r, 4, &mut hash, &mut off, &mut scratch)?[..4]
                .try_into()
                .expect("4 bytes"),
        );
        if version != FORMAT_VERSION {
            return Err(SeriesError::UnsupportedSeriesVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let width_off = off;
        let width = take(&mut r, 1, &mut hash, &mut off, &mut scratch)?[0] as usize;
        if width != 1 && width != 2 {
            return Err(SeriesError::CorruptSeriesFile {
                offset: width_off,
                message: format!("symbol width {width} (expected 1 or 2)"),
            });
        }
        let sigma_off = off;
        let sigma = u32::from_le_bytes(
            take(&mut r, 4, &mut hash, &mut off, &mut scratch)?[..4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if sigma == 0 || sigma > usize::from(u16::MAX) + 1 {
            return Err(SeriesError::CorruptSeriesFile {
                offset: sigma_off,
                message: format!("alphabet size {sigma} (expected 1..=65536)"),
            });
        }
        if width == 1 && sigma > 256 {
            return Err(SeriesError::CorruptSeriesFile {
                offset: sigma_off,
                message: format!("alphabet size {sigma} does not fit symbol width 1"),
            });
        }
        let mut names = Vec::with_capacity(sigma);
        let mut name_buf = Vec::new();
        for _ in 0..sigma {
            let name_off = off;
            let len = u16::from_le_bytes(
                take(&mut r, 2, &mut hash, &mut off, &mut scratch)?[..2]
                    .try_into()
                    .expect("2 bytes"),
            ) as usize;
            name_buf.resize(len, 0);
            read_exact_at(&mut r, &mut name_buf, off, total)?;
            hash = fnv1a(hash, &name_buf);
            off += len as u64;
            let name = String::from_utf8(name_buf.clone()).map_err(|_| {
                SeriesError::CorruptSeriesFile {
                    offset: name_off,
                    message: "symbol name is not valid UTF-8".into(),
                }
            })?;
            names.push(name);
        }
        let alphabet = Alphabet::from_symbols(names)?;
        let len_off = off;
        let len64 = u64::from_le_bytes(take(&mut r, 8, &mut hash, &mut off, &mut scratch)?);
        let len = usize::try_from(len64).map_err(|_| SeriesError::CorruptSeriesFile {
            offset: len_off,
            message: format!("series length {len64} exceeds the address space"),
        })?;

        let payload_start = off;
        let expected = payload_start + len64 * width as u64 + 8;
        if total < expected {
            return Err(SeriesError::TruncatedSeriesFile {
                expected,
                actual: total,
            });
        }
        if total > expected {
            return Err(SeriesError::CorruptSeriesFile {
                offset: expected,
                message: format!("{} trailing bytes past the trailer", total - expected),
            });
        }
        r.seek(SeekFrom::Start(total - 8))?;
        let mut tr = [0u8; 8];
        read_exact_at(&mut r, &mut tr, total - 8, total)?;
        let trailer = u64::from_le_bytes(tr);
        r.seek(SeekFrom::Start(payload_start))?;

        Ok(FileSeriesReader {
            kind: ReaderKind::Binary(BinaryState {
                file: r,
                width,
                payload_start,
                pos: 0,
                hashed: 0,
                hash,
                trailer,
                verified: len == 0 && {
                    // Empty payload: the trailer must match the header hash.
                    if hash != trailer {
                        return Err(SeriesError::SeriesChecksumMismatch {
                            expected: trailer,
                            actual: hash,
                        });
                    }
                    true
                },
                byte_buf: Vec::new(),
            }),
            alphabet,
            len,
        })
    }

    fn open_text(mut r: BufReader<File>, total: u64) -> Result<Self> {
        // Text files are small by contract: slurp, verify, materialize.
        let mut bytes = Vec::with_capacity(total as usize);
        bytes.extend_from_slice(&TEXT_MAGIC);
        r.read_to_end(&mut bytes)?;
        let text = std::str::from_utf8(&bytes).map_err(|e| SeriesError::CorruptSeriesFile {
            offset: e.valid_up_to() as u64,
            message: "text series file is not valid UTF-8".into(),
        })?;

        // Locate the trailer line (last non-empty line).
        let trimmed = text.trim_end_matches('\n');
        let trailer_start = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let trailer_line = &trimmed[trailer_start..];
        let hex = trailer_line
            .strip_prefix("fnv1a ")
            .ok_or(SeriesError::CorruptSeriesFile {
                offset: trailer_start as u64,
                message: "missing `fnv1a <hex>` trailer line".into(),
            })?;
        let trailer =
            u64::from_str_radix(hex.trim(), 16).map_err(|_| SeriesError::CorruptSeriesFile {
                offset: trailer_start as u64,
                message: format!("unparseable trailer checksum {hex:?}"),
            })?;
        let actual = fnv1a(FNV_OFFSET, &bytes[..trailer_start]);
        if actual != trailer {
            return Err(SeriesError::SeriesChecksumMismatch {
                expected: trailer,
                actual,
            });
        }

        let mut lines = text[..trailer_start].lines();
        let mut off = 0u64;
        let header = lines.next().unwrap_or("");
        if header.trim() != format!("PSRT {FORMAT_VERSION}") {
            if let Some(v) = header.trim().strip_prefix("PSRT ") {
                if let Ok(found) = v.trim().parse::<u32>() {
                    return Err(SeriesError::UnsupportedSeriesVersion {
                        found,
                        supported: FORMAT_VERSION,
                    });
                }
            }
            return Err(SeriesError::CorruptSeriesFile {
                offset: 0,
                message: format!("bad text header line {header:?}"),
            });
        }
        off += header.len() as u64 + 1;
        let alpha_line = lines.next().unwrap_or("");
        let names: Vec<String> = alpha_line
            .strip_prefix("alphabet ")
            .ok_or(SeriesError::CorruptSeriesFile {
                offset: off,
                message: "expected `alphabet <names...>` line".into(),
            })?
            .split_whitespace()
            .map(str::to_owned)
            .collect();
        let alphabet = Alphabet::from_symbols(names)?;
        off += alpha_line.len() as u64 + 1;
        let len_line = lines.next().unwrap_or("");
        let len: usize = len_line
            .strip_prefix("length ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(SeriesError::CorruptSeriesFile {
                offset: off,
                message: "expected `length <n>` line".into(),
            })?;
        off += len_line.len() as u64 + 1;

        let mut ids = Vec::with_capacity(len);
        for line in lines {
            for c in line.chars() {
                let id = alphabet
                    .lookup_char(c)
                    .map_err(|_| SeriesError::CorruptSeriesFile {
                        offset: off,
                        message: format!("symbol {c:?} is not in the alphabet"),
                    })?;
                ids.push(id);
            }
            off += line.len() as u64 + 1;
        }
        if ids.len() != len {
            return Err(SeriesError::CorruptSeriesFile {
                offset: off,
                message: format!("payload holds {} of {len} declared symbols", ids.len()),
            });
        }
        Ok(FileSeriesReader {
            kind: ReaderKind::Text(ids),
            alphabet,
            len,
        })
    }

    /// Total symbols in the file.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes one payload symbol occupies on disk (text files count the
    /// in-memory id width, since they are materialized at open).
    pub fn symbol_width(&self) -> usize {
        match &self.kind {
            ReaderKind::Binary(b) => b.width,
            ReaderKind::Text(_) => std::mem::size_of::<SymbolId>(),
        }
    }

    /// Whether the FNV-1a trailer has been verified yet. Text files verify
    /// at open; binary files verify at the end of the first full sequential
    /// pass (or via [`Self::verify`]).
    pub fn checksum_verified(&self) -> bool {
        match &self.kind {
            ReaderKind::Binary(b) => b.verified,
            ReaderKind::Text(_) => true,
        }
    }

    /// Forces one sequential integrity pass over the payload.
    pub fn verify(&mut self) -> Result<()> {
        let mut buf = Vec::new();
        let mut at = 0usize;
        while at < self.len {
            at += self.read_at(at, 1 << 16, &mut buf)?;
        }
        Ok(())
    }

    /// Materializes the whole file as an in-memory [`SymbolSeries`]
    /// (verifying the checksum on the way).
    pub fn read_all(&mut self) -> Result<SymbolSeries> {
        let mut ids = Vec::with_capacity(self.len);
        let mut buf = Vec::new();
        let mut at = 0usize;
        while at < self.len {
            let got = self.read_at(at, 1 << 16, &mut buf)?;
            ids.extend_from_slice(&buf[..got]);
            at += got;
        }
        SymbolSeries::from_ids(ids, Arc::clone(&self.alphabet))
    }
}

impl SeriesSource for FileSeriesReader {
    fn series_len(&self) -> usize {
        self.len
    }

    fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    fn read_at(&mut self, at: usize, max: usize, buf: &mut Vec<SymbolId>) -> Result<usize> {
        buf.clear();
        if at >= self.len {
            return Ok(0);
        }
        let count = max.min(self.len - at);
        let sigma = self.alphabet.len();
        match &mut self.kind {
            ReaderKind::Text(ids) => {
                buf.extend_from_slice(&ids[at..at + count]);
            }
            ReaderKind::Binary(b) => {
                if b.pos != at {
                    b.file
                        .seek(SeekFrom::Start(b.payload_start + (at * b.width) as u64))?;
                    b.pos = at;
                }
                let nbytes = count * b.width;
                b.byte_buf.resize(nbytes, 0);
                let off = b.payload_start + (at * b.width) as u64;
                let total = b.payload_start + (self.len * b.width) as u64 + 8;
                let BinaryState { file, byte_buf, .. } = b;
                read_exact_at(file, byte_buf, off, total)?;
                // A sequential pass extends the running checksum; once the
                // final symbol is hashed the trailer must agree.
                if !b.verified && at == b.hashed {
                    b.hash = fnv1a(b.hash, &b.byte_buf);
                    b.hashed += count;
                    if b.hashed == self.len {
                        if b.hash != b.trailer {
                            return Err(SeriesError::SeriesChecksumMismatch {
                                expected: b.trailer,
                                actual: b.hash,
                            });
                        }
                        b.verified = true;
                    }
                }
                buf.reserve(count);
                if b.width == 1 {
                    for (i, &raw) in b.byte_buf.iter().enumerate() {
                        let id = usize::from(raw);
                        if id >= sigma {
                            return Err(SeriesError::CorruptSeriesFile {
                                offset: b.payload_start + ((at + i) * b.width) as u64,
                                message: format!("symbol id {id} >= alphabet size {sigma}"),
                            });
                        }
                        buf.push(SymbolId(raw.into()));
                    }
                } else {
                    for (i, pair) in b.byte_buf.chunks_exact(2).enumerate() {
                        let raw = u16::from_le_bytes([pair[0], pair[1]]);
                        if usize::from(raw) >= sigma {
                            return Err(SeriesError::CorruptSeriesFile {
                                offset: b.payload_start + ((at + i) * b.width) as u64,
                                message: format!("symbol id {raw} >= alphabet size {sigma}"),
                            });
                        }
                        buf.push(SymbolId(raw));
                    }
                }
                b.pos = at + count;
            }
        }
        Ok(count)
    }
}

/// Streaming writer for the binary format: declare the alphabet and length
/// up front, push symbols in any batch sizes, finish to emit the trailer.
/// Memory stays O(1) regardless of series length.
#[derive(Debug)]
pub struct SeriesFileWriter {
    out: BufWriter<File>,
    width: usize,
    len: usize,
    written: usize,
    sigma: usize,
    hash: u64,
}

impl SeriesFileWriter {
    /// Creates the file and writes the header. `len` is the exact number of
    /// symbols that must be pushed before [`Self::finish`].
    pub fn create(path: impl AsRef<Path>, alphabet: &Alphabet, len: usize) -> Result<Self> {
        let sigma = alphabet.len();
        let width = if sigma <= 256 { 1 } else { 2 };
        let mut header = Vec::new();
        header.extend_from_slice(&BINARY_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.push(width as u8);
        header.extend_from_slice(&(sigma as u32).to_le_bytes());
        for name in alphabet.names() {
            let bytes = name.as_bytes();
            debug_assert!(bytes.len() <= usize::from(u16::MAX));
            header.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            header.extend_from_slice(bytes);
        }
        header.extend_from_slice(&(len as u64).to_le_bytes());
        let mut out = BufWriter::new(File::create(path.as_ref())?);
        out.write_all(&header)?;
        Ok(SeriesFileWriter {
            out,
            width,
            len,
            written: 0,
            sigma,
            hash: fnv1a(FNV_OFFSET, &header),
        })
    }

    /// Symbols pushed so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Appends one symbol. Panics if more than the declared `len` symbols
    /// are pushed (a caller bug, not an input condition).
    pub fn push(&mut self, id: SymbolId) -> Result<()> {
        self.push_slice(std::slice::from_ref(&id))
    }

    /// Appends a batch of symbols.
    pub fn push_slice(&mut self, ids: &[SymbolId]) -> Result<()> {
        assert!(
            self.written + ids.len() <= self.len,
            "series file writer declared {} symbols, given more",
            self.len
        );
        let mut bytes = [0u8; 512];
        for batch in ids.chunks(bytes.len() / self.width) {
            let mut used = 0;
            for &id in batch {
                if usize::from(id.0) >= self.sigma {
                    return Err(SeriesError::SymbolOutOfRange {
                        index: usize::from(id.0),
                        alphabet: self.sigma,
                    });
                }
                if self.width == 1 {
                    bytes[used] = id.0 as u8;
                } else {
                    bytes[used..used + 2].copy_from_slice(&id.0.to_le_bytes());
                }
                used += self.width;
            }
            self.out.write_all(&bytes[..used])?;
            self.hash = fnv1a(self.hash, &bytes[..used]);
        }
        self.written += ids.len();
        Ok(())
    }

    /// Writes the FNV-1a trailer and flushes. Errors if fewer than the
    /// declared `len` symbols were pushed.
    pub fn finish(mut self) -> Result<()> {
        if self.written != self.len {
            return Err(SeriesError::TruncatedSeriesFile {
                expected: (self.len * self.width) as u64,
                actual: (self.written * self.width) as u64,
            });
        }
        let trailer = self.hash.to_le_bytes();
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        Ok(())
    }
}

/// Writes a resident series to `path` in the binary format.
pub fn write_series_file(path: impl AsRef<Path>, series: &SymbolSeries) -> Result<()> {
    let mut w = SeriesFileWriter::create(path, series.alphabet(), series.len())?;
    w.push_slice(series.symbols())?;
    w.finish()
}

/// Writes a resident series to `path` in the text format. Requires
/// single-character symbol names (the text payload is one char per symbol).
pub fn write_text_series_file(path: impl AsRef<Path>, series: &SymbolSeries) -> Result<()> {
    let alphabet = series.alphabet();
    let mut body = String::new();
    body.push_str(&format!("PSRT {FORMAT_VERSION}\nalphabet"));
    for name in alphabet.names() {
        if name.chars().count() != 1 {
            return Err(SeriesError::InvalidGenerator(format!(
                "text series format requires single-character symbol names, got {name:?}"
            )));
        }
        body.push(' ');
        body.push_str(name);
    }
    body.push_str(&format!("\nlength {}\n", series.len()));
    for (i, &id) in series.symbols().iter().enumerate() {
        body.push_str(alphabet.name(id));
        if (i + 1) % 80 == 0 {
            body.push('\n');
        }
    }
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let hash = fnv1a(FNV_OFFSET, body.as_bytes());
    body.push_str(&format!("fnv1a {hash:016x}\n"));
    let mut out = BufWriter::new(File::create(path.as_ref())?);
    out.write_all(body.as_bytes())?;
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn sample(n: usize, sigma: usize) -> SymbolSeries {
        let alphabet = Alphabet::latin(sigma).expect("ok");
        let ids: Vec<SymbolId> = (0..n)
            .map(|i| SymbolId::from_index((i * 7 + i / 3) % sigma))
            .collect();
        SymbolSeries::from_ids(ids, alphabet).expect("ok")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("periodica-source-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_round_trip_preserves_series() {
        let s = sample(1000, 5);
        let path = tmp("bin-rt.series");
        write_series_file(&path, &s).expect("write");
        let mut r = FileSeriesReader::open(&path).expect("open");
        assert_eq!(r.len(), 1000);
        assert_eq!(r.symbol_width(), 1);
        assert!(!r.checksum_verified());
        let back = r.read_all().expect("read");
        assert!(r.checksum_verified());
        assert_eq!(back.symbols(), s.symbols());
        assert_eq!(back.alphabet().names(), s.alphabet().names());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wide_alphabet_uses_two_byte_payload() {
        let names: Vec<String> = (0..300).map(|i| format!("s{i}")).collect();
        let alphabet = Alphabet::from_symbols(names).expect("ok");
        let ids: Vec<SymbolId> = (0..500).map(|i| SymbolId::from_index(i % 300)).collect();
        let s = SymbolSeries::from_ids(ids, alphabet).expect("ok");
        let path = tmp("wide.series");
        write_series_file(&path, &s).expect("write");
        let mut r = FileSeriesReader::open(&path).expect("open");
        assert_eq!(r.symbol_width(), 2);
        assert_eq!(r.read_all().expect("read").symbols(), s.symbols());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_round_trip_preserves_series() {
        let s = sample(300, 4);
        let path = tmp("text-rt.series");
        write_text_series_file(&path, &s).expect("write");
        let mut r = FileSeriesReader::open(&path).expect("open");
        assert!(r.checksum_verified());
        assert_eq!(r.read_all().expect("read").symbols(), s.symbols());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_driver_sees_every_symbol_once_with_correct_carry() {
        let s = sample(257, 3);
        for chunk in [1usize, 7, 64, 256, 257, 300] {
            for overlap in [0usize, 5, 64] {
                let mut seen: Vec<SymbolId> = Vec::new();
                let mut src = MemorySource::new(&s);
                for_each_chunk::<_, SeriesError, _>(&mut src, chunk, overlap, |view| {
                    assert_eq!(view.start(), seen.len());
                    let expect_carry = overlap.min(seen.len());
                    assert_eq!(view.carry().len(), expect_carry);
                    assert_eq!(view.carry(), &seen[seen.len() - expect_carry..]);
                    assert_eq!(view.full().len(), expect_carry + view.fresh().len());
                    seen.extend_from_slice(view.fresh());
                    Ok(())
                })
                .expect("ok");
                assert_eq!(seen, s.symbols(), "chunk={chunk} overlap={overlap}");
            }
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let s = sample(200, 4);
        let path = tmp("trunc.series");
        write_series_file(&path, &s).expect("write");
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 20]).expect("rewrite");
        match FileSeriesReader::open(&path) {
            Err(SeriesError::TruncatedSeriesFile { expected, actual }) => {
                assert_eq!(expected, full.len() as u64);
                assert_eq!(actual, full.len() as u64 - 20);
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let s = sample(200, 4);
        let path = tmp("flip.series");
        write_series_file(&path, &s).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() - 50;
        bytes[mid] ^= 0x01; // still a valid id for sigma=4? 0x01 flip keeps id < 4 sometimes
        std::fs::write(&path, &bytes).expect("rewrite");
        let mut r = FileSeriesReader::open(&path).expect("header is intact");
        let err = r.verify().expect_err("must fail");
        assert!(
            matches!(
                err,
                SeriesError::SeriesChecksumMismatch { .. } | SeriesError::CorruptSeriesFile { .. }
            ),
            "got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_bad_version_are_typed() {
        let s = sample(50, 3);
        let path = tmp("magic.series");
        write_series_file(&path, &s).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        let orig = bytes.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            FileSeriesReader::open(&path),
            Err(SeriesError::CorruptSeriesFile { offset: 0, .. })
        ));
        let mut bytes = orig;
        bytes[4] = 9; // version 9
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            FileSeriesReader::open(&path),
            Err(SeriesError::UnsupportedSeriesVersion {
                found: 9,
                supported: FORMAT_VERSION
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_trailer_checksum_is_typed() {
        let s = sample(120, 3);
        let path = tmp("trailer.series");
        write_series_file(&path, &s).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let mut r = FileSeriesReader::open(&path).expect("header is intact");
        assert!(matches!(
            r.verify(),
            Err(SeriesError::SeriesChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_short_writes_and_foreign_ids() {
        let alphabet = Alphabet::latin(3).expect("ok");
        let path = tmp("short.series");
        let mut w = SeriesFileWriter::create(&path, &alphabet, 10).expect("create");
        w.push(SymbolId(0)).expect("ok");
        assert!(matches!(
            w.push(SymbolId(7)),
            Err(SeriesError::SymbolOutOfRange { .. })
        ));
        let mut w = SeriesFileWriter::create(&path, &alphabet, 10).expect("create");
        w.push(SymbolId(1)).expect("ok");
        assert!(matches!(
            w.finish(),
            Err(SeriesError::TruncatedSeriesFile { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_series_round_trips() {
        let alphabet = Alphabet::latin(2).expect("ok");
        let s = SymbolSeries::from_ids(Vec::new(), alphabet).expect("ok");
        let path = tmp("empty.series");
        write_series_file(&path, &s).expect("write");
        let mut r = FileSeriesReader::open(&path).expect("open");
        assert_eq!(r.len(), 0);
        assert!(r.checksum_verified());
        assert!(r.read_all().expect("read").is_empty());
        std::fs::remove_file(&path).ok();
    }
}
