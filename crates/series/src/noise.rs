//! Noise models for time-series corruption.
//!
//! The paper (Sect. 4) perturbs synthetic data with three noise types —
//! replacement, insertion, deletion — applied "randomly and uniformly over
//! the whole time series", plus uniform mixtures of them (e.g. `R+I+D`
//! splits the noise ratio equally three ways). This module reproduces that
//! taxonomy exactly so the resilience experiment (Fig. 6) can be rerun.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alphabet::Alphabet;
use crate::error::{Result, SeriesError};
use crate::series::SymbolSeries;
use crate::symbol::SymbolId;

/// One elementary corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Replace the symbol at a random position with a *different* random
    /// symbol.
    Replacement,
    /// Insert a random symbol at a random position (lengthens the series).
    Insertion,
    /// Delete the symbol at a random position (shortens the series).
    Deletion,
}

impl NoiseKind {
    /// Single-letter label used in the paper's figures (R / I / D).
    pub fn label(self) -> &'static str {
        match self {
            NoiseKind::Replacement => "R",
            NoiseKind::Insertion => "I",
            NoiseKind::Deletion => "D",
        }
    }
}

/// A noise specification: a mixture of kinds sharing a total event ratio.
///
/// `ratio` is the fraction of the series length subjected to noise events;
/// each event draws its kind uniformly from `mix` (so `R+I+D` at 30% puts
/// ~10% of the length through each kind, matching the paper's description).
///
/// ```
/// use periodica_series::noise::NoiseSpec;
/// use periodica_series::{Alphabet, SymbolSeries};
///
/// let alphabet = Alphabet::latin(3)?;
/// let clean = SymbolSeries::parse(&"abc".repeat(100), &alphabet)?;
/// // 20% replacement noise: length preserved, ~20% of symbols altered.
/// let noisy = NoiseSpec::replacement(0.2)?.apply(&clean, 42);
/// assert_eq!(noisy.len(), clean.len());
/// let changed = clean
///     .symbols()
///     .iter()
///     .zip(noisy.symbols())
///     .filter(|(a, b)| a != b)
///     .count();
/// assert!(changed > 30 && changed <= 60);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    mix: Vec<NoiseKind>,
    ratio: f64,
}

impl NoiseSpec {
    /// Builds a mixture spec.
    pub fn new(mix: Vec<NoiseKind>, ratio: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&ratio) || ratio.is_nan() {
            return Err(SeriesError::InvalidNoiseRatio(ratio));
        }
        if mix.is_empty() {
            return Err(SeriesError::InvalidGenerator(
                "noise mix must be non-empty".into(),
            ));
        }
        Ok(NoiseSpec { mix, ratio })
    }

    /// Pure replacement noise.
    pub fn replacement(ratio: f64) -> Result<Self> {
        Self::new(vec![NoiseKind::Replacement], ratio)
    }

    /// Pure insertion noise.
    pub fn insertion(ratio: f64) -> Result<Self> {
        Self::new(vec![NoiseKind::Insertion], ratio)
    }

    /// Pure deletion noise.
    pub fn deletion(ratio: f64) -> Result<Self> {
        Self::new(vec![NoiseKind::Deletion], ratio)
    }

    /// The paper's figure label, e.g. `"R+I+D"`.
    pub fn label(&self) -> String {
        self.mix
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Total noise ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Mixture components.
    pub fn mix(&self) -> &[NoiseKind] {
        &self.mix
    }

    /// Applies the noise to `series` with a seeded RNG, returning the
    /// corrupted series. Length may change under insertion/deletion.
    pub fn apply(&self, series: &SymbolSeries, seed: u64) -> SymbolSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        self.apply_with(series, &mut rng)
    }

    /// Applies the noise using a caller-provided RNG.
    pub fn apply_with<R: Rng>(&self, series: &SymbolSeries, rng: &mut R) -> SymbolSeries {
        let alphabet: Arc<Alphabet> = Arc::clone(series.alphabet());
        let sigma = alphabet.len();
        let mut data: Vec<SymbolId> = series.symbols().to_vec();
        let events = (self.ratio * series.len() as f64).round() as usize;
        for _ in 0..events {
            if data.is_empty() {
                break;
            }
            let kind = self.mix[rng.random_range(0..self.mix.len())];
            match kind {
                NoiseKind::Replacement => {
                    let pos = rng.random_range(0..data.len());
                    if sigma > 1 {
                        // Draw a different symbol (paper: "altering the
                        // symbol ... by another").
                        let cur = data[pos].index();
                        let mut next = rng.random_range(0..sigma - 1);
                        if next >= cur {
                            next += 1;
                        }
                        data[pos] = SymbolId::from_index(next);
                    }
                }
                NoiseKind::Insertion => {
                    let pos = rng.random_range(0..=data.len());
                    let sym = SymbolId::from_index(rng.random_range(0..sigma));
                    data.insert(pos, sym);
                }
                NoiseKind::Deletion => {
                    let pos = rng.random_range(0..data.len());
                    data.remove(pos);
                }
            }
        }
        SymbolSeries::from_ids(data, alphabet).expect("noise preserves alphabet validity")
    }
}

/// The five mixtures plotted in the paper's Fig. 6, in legend order.
pub fn figure6_mixtures() -> Vec<Vec<NoiseKind>> {
    use NoiseKind::{Deletion as D, Insertion as I, Replacement as R};
    vec![vec![R], vec![I], vec![D], vec![R, I, D], vec![I, D]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn base_series(n: usize) -> SymbolSeries {
        let a = Alphabet::latin(4).expect("ok");
        let ids = (0..n).map(|i| SymbolId::from_index(i % 4)).collect();
        SymbolSeries::from_ids(ids, a).expect("ok")
    }

    #[test]
    fn replacement_preserves_length_and_changes_symbols() {
        let s = base_series(1000);
        let noisy = NoiseSpec::replacement(0.2).expect("ok").apply(&s, 42);
        assert_eq!(noisy.len(), s.len());
        let diffs = s
            .symbols()
            .iter()
            .zip(noisy.symbols())
            .filter(|(a, b)| a != b)
            .count();
        // 200 events, possibly overlapping positions; at least half should
        // land on distinct positions and every event changes the symbol.
        assert!(diffs > 100, "only {diffs} symbols changed");
        assert!(diffs <= 200);
    }

    #[test]
    fn insertion_lengthens_deletion_shortens() {
        let s = base_series(500);
        let ins = NoiseSpec::insertion(0.1).expect("ok").apply(&s, 1);
        assert_eq!(ins.len(), 550);
        let del = NoiseSpec::deletion(0.1).expect("ok").apply(&s, 2);
        assert_eq!(del.len(), 450);
    }

    #[test]
    fn mixture_is_roughly_balanced_in_length_effect() {
        // I and D in equal mixture keep expected length constant.
        let s = base_series(2000);
        let spec =
            NoiseSpec::new(vec![NoiseKind::Insertion, NoiseKind::Deletion], 0.3).expect("ok");
        let noisy = spec.apply(&s, 7);
        let delta = noisy.len() as i64 - 2000;
        assert!(delta.abs() < 120, "length drifted by {delta}");
        assert_eq!(spec.label(), "I+D");
    }

    #[test]
    fn zero_ratio_is_identity() {
        let s = base_series(100);
        let noisy = NoiseSpec::replacement(0.0).expect("ok").apply(&s, 3);
        assert_eq!(noisy, s);
    }

    #[test]
    fn full_deletion_empties_series() {
        let s = base_series(50);
        let noisy = NoiseSpec::deletion(1.0).expect("ok").apply(&s, 4);
        assert!(noisy.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let s = base_series(300);
        let spec = NoiseSpec::new(figure6_mixtures()[3].clone(), 0.25).expect("ok");
        assert_eq!(spec.apply(&s, 9), spec.apply(&s, 9));
        assert_eq!(spec.label(), "R+I+D");
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(NoiseSpec::replacement(-0.1).is_err());
        assert!(NoiseSpec::replacement(1.1).is_err());
        assert!(NoiseSpec::replacement(f64::NAN).is_err());
        assert!(NoiseSpec::new(vec![], 0.1).is_err());
    }

    #[test]
    fn single_symbol_alphabet_replacement_is_noop() {
        let a = Alphabet::latin(1).expect("ok");
        let s = SymbolSeries::from_ids(vec![SymbolId(0); 20], a).expect("ok");
        let noisy = NoiseSpec::replacement(0.5).expect("ok").apply(&s, 5);
        assert_eq!(noisy, s);
    }
}
