//! # periodica-series
//!
//! The symbol time-series substrate of the `periodica` workspace:
//!
//! * [`alphabet`] / [`symbol`] — interned finite alphabets (`sigma` symbols);
//! * [`series`] — the series container plus the paper's primitives:
//!   projections `pi(p, l)`, consecutive-occurrence counts `F2`, lag-match
//!   counts, and confidences;
//! * [`discretize`] — numeric-to-symbol level mapping (the paper's five
//!   levels, and friends);
//! * [`noise`] — replacement / insertion / deletion corruption and the
//!   paper's mixtures;
//! * [`generate`] — the paper's synthetic periodic workloads (U/N
//!   distributions);
//! * [`io`] — text/CSV persistence and a one-pass streaming decoder;
//! * [`source`] — out-of-core access: the [`SeriesSource`] abstraction, the
//!   checksummed binary/text on-disk series formats, and the chunk/overlap
//!   streaming driver.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod alphabet;
pub mod discretize;
pub mod error;
pub mod generate;
pub mod io;
pub mod noise;
pub mod series;
pub mod source;
pub mod stats;
pub mod symbol;

pub use alphabet::Alphabet;
pub use error::{Result, SeriesError};
pub use series::{pair_denominator, projection_len, SeriesBuilder, SymbolSeries};
pub use source::{
    for_each_chunk, write_series_file, write_text_series_file, ChunkView, FileSeriesReader,
    MemorySource, SeriesFileWriter, SeriesSource,
};
pub use symbol::SymbolId;

#[cfg(test)]
mod proptests {
    use crate::alphabet::Alphabet;
    use crate::discretize::{Breakpoints, Discretizer, EqualWidth};
    use crate::generate::{PeriodicSeriesSpec, SymbolDistribution};
    use crate::noise::{NoiseKind, NoiseSpec};
    use crate::series::{pair_denominator, projection_len, SymbolSeries};
    use crate::symbol::SymbolId;
    use proptest::prelude::*;

    fn arb_series(max_len: usize) -> impl Strategy<Value = SymbolSeries> {
        (1usize..6).prop_flat_map(move |sigma| {
            proptest::collection::vec(0usize..sigma, 1..max_len).prop_map(move |ids| {
                let a = Alphabet::latin(sigma).unwrap();
                SymbolSeries::from_ids(ids.into_iter().map(SymbolId::from_index).collect(), a)
                    .unwrap()
            })
        })
    }

    proptest! {
        #[test]
        fn projection_lengths_partition_the_series(s in arb_series(120), p in 1usize..15) {
            let n = s.len();
            let total: usize = (0..p).map(|l| projection_len(n, p, l)).sum();
            prop_assert_eq!(total, n);
        }

        #[test]
        fn phase_f2_sums_to_lag_matches(s in arb_series(100), p in 1usize..12) {
            for sym in 0..s.sigma() {
                let sym = SymbolId::from_index(sym);
                let total: usize = (0..p).map(|l| s.f2_projected(sym, p, l)).sum();
                prop_assert_eq!(total, s.lag_matches(sym, p));
            }
        }

        #[test]
        fn confidence_is_a_valid_ratio(s in arb_series(80), p in 1usize..10, l in 0usize..10) {
            for sym in 0..s.sigma() {
                let c = s.confidence(SymbolId::from_index(sym), p, l);
                prop_assert!((0.0..=1.0).contains(&c), "confidence {}", c);
            }
        }

        #[test]
        fn pair_denominator_is_projection_pairs(n in 0usize..500, p in 1usize..30, l in 0usize..30) {
            let m = projection_len(n, p, l);
            prop_assert_eq!(pair_denominator(n, p, l), m.saturating_sub(1));
        }

        #[test]
        fn generated_series_confidence_is_one_at_embedded_period(
            period in 2usize..20,
            reps in 3usize..10,
            seed in 0u64..50,
        ) {
            let spec = PeriodicSeriesSpec {
                length: period * reps,
                period,
                alphabet_size: 6,
                distribution: SymbolDistribution::Uniform,
            };
            let g = spec.generate(seed).unwrap();
            for (sym, phase) in g.embedded_periodicities() {
                prop_assert!((g.series.confidence(sym, period, phase) - 1.0).abs() < 1e-12);
            }
        }

        #[test]
        fn replacement_noise_preserves_length(
            seed in 0u64..20, ratio in 0.0f64..1.0,
        ) {
            let spec = PeriodicSeriesSpec {
                length: 300, period: 25, alphabet_size: 8,
                distribution: SymbolDistribution::Uniform,
            };
            let g = spec.generate(seed).unwrap();
            let noisy = NoiseSpec::replacement(ratio).unwrap().apply(&g.series, seed);
            prop_assert_eq!(noisy.len(), g.series.len());
        }

        #[test]
        fn insertion_and_deletion_change_length_by_event_count(
            seed in 0u64..20, ratio in 0.0f64..0.9,
        ) {
            let spec = PeriodicSeriesSpec {
                length: 400, period: 20, alphabet_size: 5,
                distribution: SymbolDistribution::Uniform,
            };
            let g = spec.generate(seed).unwrap();
            let events = (ratio * 400.0).round() as usize;
            let ins = NoiseSpec::new(vec![NoiseKind::Insertion], ratio).unwrap()
                .apply(&g.series, seed);
            prop_assert_eq!(ins.len(), 400 + events);
            let del = NoiseSpec::new(vec![NoiseKind::Deletion], ratio).unwrap()
                .apply(&g.series, seed);
            prop_assert_eq!(del.len(), 400 - events);
        }

        #[test]
        fn discretizer_levels_are_in_range(v in -1e6f64..1e6) {
            let bp = Breakpoints::new(vec![-100.0, 0.0, 100.0]).unwrap();
            prop_assert!(bp.level(v) < bp.levels());
            let ew = EqualWidth::new(-500.0, 500.0, 7).unwrap();
            prop_assert!(ew.level(v) < ew.levels());
        }

        #[test]
        fn breakpoint_levels_are_monotone(a in -1e3f64..1e3, b in -1e3f64..1e3) {
            let bp = Breakpoints::new(vec![-50.0, 0.0, 50.0]).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bp.level(lo) <= bp.level(hi));
        }
    }
}
