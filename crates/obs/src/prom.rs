//! Hand-rolled Prometheus text exposition format, version 0.0.4.
//!
//! Three pieces, all zero-dependency so the serve path and CI can share
//! them: an [`Exposition`] builder that renders counters, gauges, and
//! cumulative-bucket histograms; a [`check_exposition`] validator used by
//! `periodica prom-check` and the CI loopback leg (metric-name syntax,
//! strictly increasing `le` bounds, monotone cumulative counts, a `+Inf`
//! bucket equal to `_count`, a `_sum` sample per histogram); and a small
//! scraper ([`parse_histogram`] / [`estimate_quantile`]) that `periodica
//! stats --watch` and tests use to read quantiles back out of a scrape.
//!
//! Histograms render the inclusive integer bucket bounds produced by
//! [`HistReport`]: `le="u"` means "observations ≤ u", upper bounds come
//! from [`bucket_upper`](crate::hist::bucket_upper), and only buckets that
//! actually hold observations are emitted (plus the mandatory `+Inf`).

use crate::hist::HistReport;

/// Joins a namespace prefix and a dotted metric name into a valid
/// Prometheus family name: `metric_family("periodica",
/// "serve.ingest.wire.latency_ns")` → `periodica_serve_ingest_wire_latency_ns`.
pub fn metric_family(prefix: &str, name: &str) -> String {
    format!("{}_{}", sanitize(prefix), sanitize(name))
}

/// Maps an arbitrary name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`, not starting with a digit); every other byte becomes
/// an underscore.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if ok && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Incrementally renders one text exposition document.
#[derive(Debug)]
pub struct Exposition {
    prefix: String,
    out: String,
}

impl Exposition {
    /// Starts an empty document; every family is prefixed with
    /// `<prefix>_`.
    pub fn new(prefix: &str) -> Exposition {
        Exposition {
            prefix: prefix.to_string(),
            out: String::new(),
        }
    }

    fn header(&mut self, family: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {family} {help}\n"));
        self.out.push_str(&format!("# TYPE {family} {kind}\n"));
    }

    /// Renders a monotone counter; the family gets the conventional
    /// `_total` suffix.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let family = format!("{}_total", metric_family(&self.prefix, name));
        self.header(&family, help, "counter");
        self.out.push_str(&format!("{family} {value}\n"));
    }

    /// Renders an unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let family = metric_family(&self.prefix, name);
        self.header(&family, help, "gauge");
        self.out
            .push_str(&format!("{family} {}\n", format_value(value)));
    }

    /// Renders a gauge with one sample per `(label_value, value)` row,
    /// labelled `label="label_value"`.
    pub fn gauge_with_label(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        rows: &[(String, f64)],
    ) {
        let family = metric_family(&self.prefix, name);
        self.header(&family, help, "gauge");
        for (label_value, value) in rows {
            self.out.push_str(&format!(
                "{family}{{{label}=\"{}\"}} {}\n",
                escape_label_value(label_value),
                format_value(*value)
            ));
        }
    }

    /// Renders a [`HistReport`] as cumulative `_bucket{le="…"}` samples
    /// (inclusive integer bounds) plus `+Inf`, `_sum`, and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, report: &HistReport) {
        let family = metric_family(&self.prefix, name);
        self.header(&family, help, "histogram");
        for (upper, cumulative) in &report.buckets {
            self.out
                .push_str(&format!("{family}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
        self.out.push_str(&format!(
            "{family}_bucket{{le=\"+Inf\"}} {}\n",
            report.count
        ));
        self.out.push_str(&format!("{family}_sum {}\n", report.sum));
        self.out
            .push_str(&format!("{family}_count {}\n", report.count));
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// What [`check_exposition`] verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckSummary {
    /// Number of sample (non-comment) lines.
    pub samples: usize,
    /// Number of histogram families validated.
    pub histograms: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_le(raw: &str) -> Option<f64> {
    if raw == "+Inf" {
        Some(f64::INFINITY)
    } else {
        raw.parse::<f64>().ok().filter(|v| v.is_finite())
    }
}

/// One parsed sample line: name, labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces: {line}"))?;
            if close < brace {
                return Err(format!("malformed labels: {line}"));
            }
            let labels = parse_labels(&line[brace + 1..close])?;
            let name = &line[..brace];
            let value_part = line[close + 1..].trim();
            return finish_sample(name, labels, value_part, line);
        }
        None => {
            let mut parts = line.splitn(2, [' ', '\t']);
            let name = parts.next().unwrap_or_default();
            (name, parts.next().unwrap_or_default().trim())
        }
    };
    finish_sample(name_part, Vec::new(), rest, line)
}

fn finish_sample(
    name: &str,
    labels: Vec<(String, String)>,
    value_part: &str,
    line: &str,
) -> Result<Sample, String> {
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name `{name}` in: {line}"));
    }
    // Samples may carry an optional trailing timestamp; take the first token.
    let value_token = value_part
        .split_whitespace()
        .next()
        .ok_or_else(|| format!("missing value in: {line}"))?;
    let value = match value_token {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparsable value `{other}` in: {line}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=`: {rest}"))?;
        let name = rest[..eq].trim().to_string();
        if !valid_metric_name(&name) {
            return Err(format!("invalid label name `{name}`"));
        }
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("unquoted label value after `{name}=`"));
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape in label value".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for `{name}`"))?;
        labels.push((name, value));
        rest = after[1 + end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// Validates a text exposition document. Checks metric-name and sample
/// syntax everywhere, and for every family declared `# TYPE … histogram`:
/// strictly increasing `le` bounds ending in `+Inf`, non-decreasing
/// cumulative bucket counts, `_count` present and equal to the `+Inf`
/// bucket, and `_sum` present. Returns all violations, or a summary.
#[allow(clippy::result_large_err)]
pub fn check_exposition(text: &str) -> Result<CheckSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut histogram_families = Vec::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            if parts.next() == Some("TYPE") {
                let family = parts.next().unwrap_or_default().to_string();
                let kind = parts.next().unwrap_or_default().trim();
                if !valid_metric_name(&family) {
                    errors.push(format!("invalid family name in TYPE line: {line}"));
                } else if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    errors.push(format!("unknown metric type `{kind}` for {family}"));
                } else if kind == "histogram" {
                    histogram_families.push(family);
                }
            }
            continue;
        }
        match parse_sample(line) {
            Ok(sample) => samples.push(sample),
            Err(e) => errors.push(e),
        }
    }
    for family in &histogram_families {
        check_histogram(family, &samples, &mut errors);
    }
    if errors.is_empty() {
        Ok(CheckSummary {
            samples: samples.len(),
            histograms: histogram_families.len(),
        })
    } else {
        Err(errors)
    }
}

fn check_histogram(family: &str, samples: &[Sample], errors: &mut Vec<String>) {
    let bucket_name = format!("{family}_bucket");
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    let mut sum = None;
    let mut count = None;
    for sample in samples {
        if sample.name == bucket_name {
            match sample
                .labels
                .iter()
                .find(|(name, _)| name == "le")
                .and_then(|(_, raw)| parse_le(raw))
            {
                Some(le) => buckets.push((le, sample.value)),
                None => errors.push(format!("{bucket_name} sample without a valid le label")),
            }
        } else if sample.name == format!("{family}_sum") {
            sum = Some(sample.value);
        } else if sample.name == format!("{family}_count") {
            count = Some(sample.value);
        }
    }
    if buckets.is_empty() {
        errors.push(format!("histogram {family} has no buckets"));
        return;
    }
    for pair in buckets.windows(2) {
        if pair[1].0 <= pair[0].0 {
            errors.push(format!(
                "{family}: le bounds not strictly increasing ({} then {})",
                pair[0].0, pair[1].0
            ));
        }
        if pair[1].1 < pair[0].1 {
            errors.push(format!(
                "{family}: cumulative counts decrease ({} then {})",
                pair[0].1, pair[1].1
            ));
        }
    }
    let last = buckets.last().expect("non-empty buckets");
    if last.0.is_finite() {
        errors.push(format!("{family}: missing le=\"+Inf\" bucket"));
    }
    match count {
        None => errors.push(format!("{family}: missing {family}_count")),
        Some(total) if total != last.1 => errors.push(format!(
            "{family}: _count {} != +Inf bucket {}",
            total, last.1
        )),
        Some(_) => {}
    }
    if sum.is_none() {
        errors.push(format!("{family}: missing {family}_sum"));
    }
}

/// One histogram family scraped back out of an exposition document.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSeries {
    /// Finite cumulative buckets, ascending `(le, cumulative)` with the
    /// inclusive integer bounds this crate renders.
    pub buckets: Vec<(u64, u64)>,
    /// The `+Inf` bucket (total observations).
    pub total: u64,
    /// The `_sum` sample.
    pub sum: u64,
}

/// Extracts one histogram family from an exposition document; `family` is
/// the full metric name (e.g. from [`metric_family`]). Returns `None` if
/// the family or its `+Inf` bucket is absent.
pub fn parse_histogram(text: &str, family: &str) -> Option<HistogramSeries> {
    let bucket_name = format!("{family}_bucket");
    let sum_name = format!("{family}_sum");
    let mut buckets = Vec::new();
    let mut total = None;
    let mut sum = 0u64;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Ok(sample) = parse_sample(line.trim_end()) else {
            continue;
        };
        if sample.name == bucket_name {
            let le = sample
                .labels
                .iter()
                .find(|(name, _)| name == "le")
                .and_then(|(_, raw)| parse_le(raw))?;
            if le.is_finite() {
                buckets.push((le as u64, sample.value as u64));
            } else {
                total = Some(sample.value as u64);
            }
        } else if sample.name == sum_name {
            sum = sample.value as u64;
        }
    }
    Some(HistogramSeries {
        buckets,
        total: total?,
        sum,
    })
}

/// Nearest-rank quantile estimate from scraped cumulative buckets, using
/// the same midpoint rule as [`Histogram`](crate::Histogram) — so a scrape
/// of a live histogram reproduces its quantiles exactly. Returns 0 when
/// empty.
///
/// The exposition renders only non-empty buckets, so the lower bound of
/// each `le` is recovered from the crate's log-linear grid
/// ([`bucket_lower`](crate::hist::bucket_lower) of the bucket `le` falls
/// in) rather than from the previous rendered bucket — a run of empty
/// buckets below the target must not drag the midpoint down.
pub fn estimate_quantile(series: &HistogramSeries, q: f64) -> u64 {
    if series.total == 0 {
        return 0;
    }
    let rank = ((q * series.total as f64).ceil() as u64).clamp(1, series.total);
    for &(le, cumulative) in &series.buckets {
        if cumulative >= rank {
            let lower = crate::hist::bucket_lower(crate::hist::bucket_index(le));
            return lower + (le - lower) / 2;
        }
    }
    series.buckets.last().map(|&(le, _)| le).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{report_from_counts, Histogram};

    fn sample_exposition() -> String {
        let hist = Histogram::new();
        for v in [120u64, 450, 450, 9_000, 120_000] {
            hist.record(v);
        }
        let mut exp = Exposition::new("periodica");
        exp.counter("serve.connections", "Connections accepted.", 42);
        exp.gauge("uptime_seconds", "Seconds since start.", 12.5);
        exp.gauge_with_label(
            "shard_resident",
            "Resident sessions per shard.",
            "shard",
            &[("0".to_string(), 3.0), ("1".to_string(), 5.0)],
        );
        exp.histogram(
            "serve.ingest.wire.latency_ns",
            "Ingest latency.",
            &hist.report(),
        );
        exp.finish()
    }

    #[test]
    fn rendered_exposition_passes_the_checker() {
        let text = sample_exposition();
        let summary = check_exposition(&text).expect("valid exposition");
        assert_eq!(summary.histograms, 1);
        assert!(summary.samples >= 8, "got {} samples", summary.samples);
    }

    #[test]
    fn scraping_a_render_reproduces_the_quantiles() {
        let hist = Histogram::new();
        for v in 0..1000u64 {
            hist.record(v * v % 100_000);
        }
        let mut exp = Exposition::new("periodica");
        exp.histogram("session.ingest_batch_ns", "Service time.", &hist.report());
        let text = exp.finish();
        let family = metric_family("periodica", "session.ingest_batch_ns");
        let series = parse_histogram(&text, &family).expect("family present");
        assert_eq!(series.total, 1000);
        assert_eq!(series.sum, hist.sum());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(estimate_quantile(&series, q), hist.quantile(q), "q={q}");
        }
    }

    #[test]
    fn checker_rejects_broken_histograms() {
        let bad = "\
# TYPE periodica_x histogram
periodica_x_bucket{le=\"100\"} 5
periodica_x_bucket{le=\"50\"} 3
periodica_x_bucket{le=\"+Inf\"} 4
periodica_x_sum 1234
periodica_x_count 9
";
        let errors = check_exposition(bad).expect_err("invalid");
        assert!(errors.iter().any(|e| e.contains("strictly increasing")));
        assert!(errors
            .iter()
            .any(|e| e.contains("cumulative counts decrease")));
        assert!(errors
            .iter()
            .any(|e| e.contains("_count 9 != +Inf bucket 4")));
    }

    #[test]
    fn checker_rejects_bad_names_and_values() {
        let errors = check_exposition("9bad_name 1\nok_name abc\n").expect_err("invalid");
        assert_eq!(errors.len(), 2);
        assert!(check_exposition("").is_ok());
    }

    #[test]
    fn empty_histograms_render_validly() {
        let mut exp = Exposition::new("p");
        exp.histogram("empty_ns", "Nothing yet.", &report_from_counts(&[], 0));
        let text = exp.finish();
        assert!(check_exposition(&text).is_ok());
        let series = parse_histogram(&text, "p_empty_ns").expect("present");
        assert_eq!(series.total, 0);
        assert_eq!(estimate_quantile(&series, 0.99), 0);
    }

    #[test]
    fn label_values_are_escaped_and_parsed_back() {
        let mut exp = Exposition::new("p");
        exp.gauge_with_label(
            "weird",
            "Escapes.",
            "name",
            &[("a\"b\\c\nd".to_string(), 1.0)],
        );
        let text = exp.finish();
        check_exposition(&text).expect("valid");
        let line = text.lines().last().expect("sample line");
        let sample = parse_sample(line).expect("parses");
        assert_eq!(sample.labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn sanitize_maps_arbitrary_names_onto_the_metric_alphabet() {
        assert_eq!(
            sanitize("serve.ingest.wire.latency_ns"),
            "serve_ingest_wire_latency_ns"
        );
        assert_eq!(sanitize("7seas"), "_seas");
        assert_eq!(sanitize(""), "_");
        assert_eq!(
            metric_family("periodica", "shard.queue_wait_ns"),
            "periodica_shard_queue_wait_ns"
        );
    }
}
