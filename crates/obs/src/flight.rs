//! A fixed-capacity flight recorder for rare structured events.
//!
//! Histograms answer "how slow is the service overall"; the flight
//! recorder answers "what were the last N *interesting* things that
//! happened" — slow requests, evictions, shard rebalances, snapshot
//! restores. It is a bounded ring: recording never allocates beyond the
//! event's own target string, old events are overwritten (and counted as
//! dropped), and every event carries a monotone sequence number so a
//! consumer polling `GET /debug/events` can detect gaps.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::json;

/// Default ring capacity used by
/// [`MetricsRecorder`](crate::MetricsRecorder).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// The kinds of events the flight recorder captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A request took longer than the server's slow threshold
    /// (value = nanoseconds).
    SlowRequest,
    /// A session was parked to disk under memory pressure
    /// (value = bytes released).
    Eviction,
    /// The shard pool was resized (value = new shard count).
    Rebalance,
    /// A parked session was restored on access (value = snapshot bytes
    /// rehydrated).
    SnapshotRestore,
}

impl EventKind {
    /// Every event kind, in declaration order.
    pub const ALL: [EventKind; 4] = [
        EventKind::SlowRequest,
        EventKind::Eviction,
        EventKind::Rebalance,
        EventKind::SnapshotRestore,
    ];

    /// Stable snake_case name used in JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SlowRequest => "slow_request",
            EventKind::Eviction => "eviction",
            EventKind::Rebalance => "rebalance",
            EventKind::SnapshotRestore => "snapshot_restore",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (0-based; gaps mean drops).
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// What it happened to (session id, endpoint, shard span, ...).
    pub target: String,
    /// Kind-specific magnitude; see [`EventKind`] for units.
    pub value: u64,
}

/// A bounded ring of [`FlightEvent`]s with drop accounting.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

/// A point-in-time copy of the ring, ready to serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events overwritten since the recorder was created.
    pub dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates an empty recorder retaining at most `capacity` events
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        crate::note_state_allocation();
        let capacity = capacity.max(1);
        FlightRecorder {
            started: Instant::now(),
            capacity,
            inner: Mutex::new(Inner {
                next_seq: 0,
                dropped: 0,
                ring: VecDeque::with_capacity(capacity),
            }),
        }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn record(&self, kind: EventKind, target: &str, value: u64) {
        let at_ms = self.started.elapsed().as_millis() as u64;
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(FlightEvent {
            seq,
            at_ms,
            kind,
            target: target.to_string(),
            value,
        });
    }

    /// Copies out the retained events and the drop count.
    pub fn snapshot(&self) -> FlightSnapshot {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        FlightSnapshot {
            events: inner.ring.iter().cloned().collect(),
            dropped: inner.dropped,
        }
    }
}

impl FlightSnapshot {
    /// Renders the snapshot as the `GET /debug/events` JSON document:
    /// `{"events": [{"seq": …, "at_ms": …, "kind": …, "target": …,
    /// "value": …}, …], "dropped": N}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"seq\": {}, \"at_ms\": {}, \"kind\": \"{}\", \"target\": ",
                ev.seq,
                ev.at_ms,
                ev.kind.name()
            ));
            json::write_string(&mut out, &ev.target);
            out.push_str(&format!(", \"value\": {}}}", ev.value));
        }
        out.push_str(&format!("], \"dropped\": {}}}", self.dropped));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(EventKind::Eviction, &format!("s{i}"), i);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 2);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(snap.events[0].target, "s2");
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::SlowRequest, "wire ingest req=7 \"q\"", 1_234_567);
        rec.record(EventKind::Rebalance, "4 -> 8", 8);
        let text = rec.snapshot().to_json();
        let doc = json::parse(&text).expect("valid json");
        let obj = doc.as_object().expect("object");
        assert_eq!(obj.get("dropped").and_then(|v| v.as_u64()), Some(0));
        let events = match obj.get("events").expect("events") {
            json::Value::Array(items) => items,
            other => panic!("expected array, got {}", other.type_name()),
        };
        assert_eq!(events.len(), 2);
        let first = events[0].as_object().expect("event object");
        assert_eq!(
            first.get("kind").and_then(|v| v.as_str()),
            Some("slow_request")
        );
        assert_eq!(
            first.get("target").and_then(|v| v.as_str()),
            Some("wire ingest req=7 \"q\"")
        );
        assert_eq!(first.get("value").and_then(|v| v.as_u64()), Some(1_234_567));
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
