//! Minimal self-contained JSON parser and string writer.
//!
//! The workspace keeps its runtime crates dependency-free, so run reports are
//! serialised by hand and parsed with this small recursive-descent parser. It
//! covers the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) but is tuned for telemetry documents: object keys
//! are kept in a `BTreeMap`, so key order is normalised and duplicate keys
//! keep the last value, as in most JSON implementations.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is a non-negative integer fitting in `u64`.
    Int(u64),
    /// Any other number (negative, fractional, or exponent-formatted).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys sorted.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The JSON type name used in schema and error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(entries: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(key, value)| (key.into(), value))
                .collect(),
        )
    }

    /// Serialises the value as compact JSON. Object keys come out in
    /// sorted order (the `BTreeMap` invariant), so the rendering is
    /// deterministic; `parse(v.to_json_string()) == v` for every value
    /// that does not contain NaN or infinity.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact JSON rendering of the value to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse `text` as a single JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after JSON document"));
    }
    Ok(value)
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let b = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                    .ok_or_else(|| self.err("invalid \\u escape"))?;
                self.pos += 4;
                // Surrogate pairs are replaced rather than combined; report
                // names never leave the BMP.
                char::from_u32(hex).unwrap_or('\u{FFFD}')
            }
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = self.pos > start && self.bytes[start] != b'-';
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::Int(42));
        assert_eq!(parse("-1").unwrap(), Value::Float(-1.0));
        assert_eq!(parse("2.5e1").unwrap(), Value::Float(25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c\u0041"}], "d": {}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        match &obj["a"] {
            Value::Array(items) => {
                assert_eq!(items[0], Value::Int(1));
                let inner = items[1].as_object().unwrap();
                assert_eq!(inner["b"].as_str(), Some("cA"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn to_json_string_round_trips_and_sorts_keys() {
        let doc = Value::object([
            (
                "shards",
                Value::Array(vec![Value::object([
                    ("shard", Value::Int(0)),
                    ("resident", Value::Int(3)),
                ])]),
            ),
            ("sessions", Value::Int(3)),
            ("version", Value::Str("0.1.0".into())),
            ("ratio", Value::Float(0.5)),
            ("live", Value::Bool(true)),
            ("nothing", Value::Null),
        ]);
        let text = doc.to_json_string();
        assert_eq!(parse(&text).unwrap(), doc);
        // Keys render sorted: deterministic output.
        let live = text.find("\"live\"").unwrap();
        let sessions = text.find("\"sessions\"").unwrap();
        assert!(live < sessions);
        assert!(text.contains("\"resident\": 3"));
    }

    #[test]
    fn write_string_escapes_and_round_trips() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\n\u{0001}");
        assert_eq!(out, r#""a\"b\\c\n\u0001""#);
        assert_eq!(parse(&out).unwrap(), Value::Str("a\"b\\c\n\u{0001}".into()));
    }
}
