//! Validation of run reports against a JSON-schema subset.
//!
//! CI validates `--metrics-out` documents against the checked-in
//! `docs/metrics.schema.json` without pulling in a schema crate, so this
//! module implements the small subset of JSON Schema those documents need:
//!
//! - `"type"`: `object`, `integer`, `number`, `string`, `boolean`, `array`
//!   (`integer` additionally accepts any number with zero fractional part);
//! - `"properties"` with per-key subschemas;
//! - `"required"`: listed keys must be present;
//! - `"additionalProperties"`: `false` rejects unknown keys, a subschema
//!   validates every key not named in `"properties"`.
//!
//! Anything else in the schema document is ignored, which keeps the checked-in
//! schema readable by standard tooling while this validator enforces the
//! strict parts (unknown and missing keys fail).

use crate::json::{self, Value};

/// Validate `report` (a JSON document) against `schema` (a JSON-schema
/// document, subset described in the module docs). Returns every violation
/// found, as `path: message` strings; an empty error list means the document
/// conforms.
pub fn validate_report_json(report: &str, schema: &str) -> Result<(), Vec<String>> {
    let schema = json::parse(schema).map_err(|e| vec![format!("schema is not valid JSON: {e}")])?;
    let report = json::parse(report).map_err(|e| vec![format!("report is not valid JSON: {e}")])?;
    let mut errors = Vec::new();
    validate(&report, &schema, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    let schema = match schema.as_object() {
        Some(obj) => obj,
        // A non-object schema (e.g. `true`) constrains nothing.
        None => return,
    };

    if let Some(expected) = schema.get("type").and_then(Value::as_str) {
        if !type_matches(value, expected) {
            errors.push(format!(
                "{path}: expected {expected}, found {}",
                value.type_name()
            ));
            return;
        }
    }

    let obj = match value.as_object() {
        Some(obj) => obj,
        None => return,
    };

    let empty = std::collections::BTreeMap::new();
    let properties = schema
        .get("properties")
        .and_then(Value::as_object)
        .unwrap_or(&empty);

    if let Some(Value::Array(required)) = schema.get("required") {
        for key in required {
            if let Some(key) = key.as_str() {
                if !obj.contains_key(key) {
                    errors.push(format!("{path}: missing required key {key:?}"));
                }
            }
        }
    }

    let additional = schema.get("additionalProperties");
    for (key, item) in obj {
        let child_path = format!("{path}.{key}");
        if let Some(subschema) = properties.get(key) {
            validate(item, subschema, &child_path, errors);
        } else {
            match additional {
                Some(Value::Bool(false)) => {
                    errors.push(format!("{path}: unknown key {key:?}"));
                }
                Some(subschema @ Value::Object(_)) => {
                    validate(item, subschema, &child_path, errors);
                }
                // Absent or `true`: unknown keys are unconstrained.
                _ => {}
            }
        }
    }
}

fn type_matches(value: &Value, expected: &str) -> bool {
    match expected {
        "object" => matches!(value, Value::Object(_)),
        "array" => matches!(value, Value::Array(_)),
        "string" => matches!(value, Value::Str(_)),
        "boolean" => matches!(value, Value::Bool(_)),
        "null" => matches!(value, Value::Null),
        "number" => matches!(value, Value::Int(_) | Value::Float(_)),
        "integer" => match value {
            Value::Int(_) => true,
            Value::Float(f) => f.fract() == 0.0,
            _ => false,
        },
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Hist, MetricsRecorder, Recorder};

    const STAGE_SCHEMA: &str = r#"
    {
      "type": "object",
      "required": ["counters", "histograms", "stages", "thread_claims"],
      "additionalProperties": false,
      "properties": {
        "config": { "type": "object", "additionalProperties": { "type": "string" } },
        "counters": { "type": "object", "additionalProperties": { "type": "integer" } },
        "histograms": {
          "type": "object",
          "additionalProperties": {
            "type": "object",
            "required": ["count", "sum", "p50", "p999", "buckets"],
            "properties": {
              "count": { "type": "integer" },
              "sum": { "type": "integer" },
              "p50": { "type": "integer" },
              "p999": { "type": "integer" },
              "buckets": { "type": "array" }
            }
          }
        },
        "stages": {
          "type": "object",
          "additionalProperties": {
            "type": "object",
            "required": ["count", "total_ns"],
            "properties": {
              "count": { "type": "integer" },
              "total_ns": { "type": "integer" }
            }
          }
        },
        "thread_claims": { "type": "object", "additionalProperties": { "type": "integer" } }
      }
    }"#;

    #[test]
    fn real_reports_conform() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::NttForward, 2);
        rec.record_duration(Hist::SessionIngestBatchNs, 987_654);
        rec.record_span("spectrum.match", 1234);
        rec.record_thread_claim(0, 3);
        let text = rec.report().to_json();
        validate_report_json(&text, STAGE_SCHEMA).expect("report conforms");
    }

    #[test]
    fn unknown_top_level_keys_are_rejected() {
        let rec = MetricsRecorder::new();
        let text = rec
            .report()
            .to_json()
            .replacen('{', "{\n  \"extra\": 1,", 1);
        let errors = validate_report_json(&text, STAGE_SCHEMA).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("unknown key \"extra\"")));
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        let errors = validate_report_json("{}", STAGE_SCHEMA).unwrap_err();
        assert_eq!(errors.len(), 4, "{errors:?}");
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let text = r#"{"counters": {"x": "not a number"}, "stages": {}, "thread_claims": {}}"#;
        let errors = validate_report_json(text, STAGE_SCHEMA).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("$.counters.x")));
    }
}
