//! Lock-free log-bucketed latency/size histograms (HDR-style).
//!
//! A [`Histogram`] spreads `u64` observations over base-2 **octaves**, each
//! split into `2^5 = 32` linear sub-buckets — the classic HdrHistogram
//! log-linear layout. Values below 32 land in exact unit buckets; a value
//! `v >= 32` with bit length `e+1` lands in the sub-bucket selected by the
//! five bits *below* its leading bit, so every bucket in that octave has
//! width `2^(e-5)` and lower bound at least `32 * 2^(e-5)`.
//!
//! **Relative-error bound.** Quantile estimates are bucket midpoints, so an
//! estimate differs from the exact nearest-rank sample by at most half a
//! bucket width. Since a sample `v` in a bucket of width `w` satisfies
//! `v >= 32 w`, the error is at most `w/2 <= v/64`: every reported quantile
//! is within **1/64 ≈ 1.6 %** of the exact sample (values `< 64` are exact).
//! [`Histogram::RELATIVE_ERROR`] exports the bound; the workspace proptests
//! (`tests/histogram.rs`) pin it against an exact-percentile oracle.
//!
//! Recording is wait-free: one `fetch_add` on the bucket plus relaxed
//! updates of count/sum/min/max. Histograms merge bucket-wise (associative,
//! commutative, order-independent — also proptest-pinned), and snapshot into
//! a plain [`HistReport`] for run reports and the `/metrics` endpoint.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each base-2 octave is split into `2^5 = 32`
/// linear buckets.
pub const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Total buckets covering the full `u64` range: 32 exact unit buckets plus
/// 32 per octave for octaves 5..=63.
pub const BUCKET_COUNT: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS;

/// The fixed vocabulary of histogram ids, mirroring [`Counter`]
/// (crate::Counter): a closed enum keeps recording allocation-free and
/// gives reports a stable schema. `*_ns` ids hold durations in
/// nanoseconds; `*_bytes` ids hold sizes in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Wire-protocol INGEST frame service time.
    ServeIngestWireNs,
    /// HTTP `POST /ingest` service time.
    ServeIngestHttpNs,
    /// Wire-protocol QUERY frame service time.
    ServeQueryWireNs,
    /// HTTP `POST /query` service time.
    ServeQueryHttpNs,
    /// Wire-protocol STATS frame service time.
    ServeStatsWireNs,
    /// HTTP `GET /stats` service time.
    ServeStatsHttpNs,
    /// HTTP `GET /metrics` service time (the scrape observing itself).
    ServeMetricsHttpNs,
    /// HTTP `GET /debug/events` service time.
    ServeEventsHttpNs,
    /// Wire-protocol response payload sizes.
    ServeWireResponseBytes,
    /// Time an accepted connection waited in the serve edge's pending
    /// queue before a pool worker dequeued it.
    ServeConnQueueWaitNs,
    /// HTTP response body sizes.
    ServeHttpResponseBytes,
    /// Time a sub-batch waited in a shard submission queue before its
    /// worker dequeued it.
    ShardQueueWaitNs,
    /// `SessionManager::ingest_batch` service time (per call).
    SessionIngestBatchNs,
    /// Synchronous eviction stall per `ingest_batch`/`candidates` call —
    /// the distribution behind the `session.evict_stall_ns` counter total.
    SessionEvictStallNs,
    /// Time one out-of-core chunk read spent in the series source
    /// (disk + decode + checksum fold).
    SeriesChunkReadNs,
    /// Payload bytes delivered per out-of-core chunk read.
    SeriesChunkReadBytes,
}

impl Hist {
    /// Every histogram id, in declaration order.
    pub const ALL: [Hist; 16] = [
        Hist::ServeIngestWireNs,
        Hist::ServeIngestHttpNs,
        Hist::ServeQueryWireNs,
        Hist::ServeQueryHttpNs,
        Hist::ServeStatsWireNs,
        Hist::ServeStatsHttpNs,
        Hist::ServeMetricsHttpNs,
        Hist::ServeEventsHttpNs,
        Hist::ServeWireResponseBytes,
        Hist::ServeConnQueueWaitNs,
        Hist::ServeHttpResponseBytes,
        Hist::ShardQueueWaitNs,
        Hist::SessionIngestBatchNs,
        Hist::SessionEvictStallNs,
        Hist::SeriesChunkReadNs,
        Hist::SeriesChunkReadBytes,
    ];

    /// Number of histogram ids.
    pub const COUNT: usize = Hist::ALL.len();

    /// Stable dot-separated name used in reports and `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ServeIngestWireNs => "serve.ingest.wire.latency_ns",
            Hist::ServeIngestHttpNs => "serve.ingest.http.latency_ns",
            Hist::ServeQueryWireNs => "serve.query.wire.latency_ns",
            Hist::ServeQueryHttpNs => "serve.query.http.latency_ns",
            Hist::ServeStatsWireNs => "serve.stats.wire.latency_ns",
            Hist::ServeStatsHttpNs => "serve.stats.http.latency_ns",
            Hist::ServeMetricsHttpNs => "serve.metrics.http.latency_ns",
            Hist::ServeEventsHttpNs => "serve.events.http.latency_ns",
            Hist::ServeWireResponseBytes => "serve.wire.response_bytes",
            Hist::ServeConnQueueWaitNs => "serve.conn_queue_wait_ns",
            Hist::ServeHttpResponseBytes => "serve.http.response_bytes",
            Hist::ShardQueueWaitNs => "shard.queue_wait_ns",
            Hist::SessionIngestBatchNs => "session.ingest_batch_ns",
            Hist::SessionEvictStallNs => "session.evict_stall_ns",
            Hist::SeriesChunkReadNs => "series.chunk_read_ns",
            Hist::SeriesChunkReadBytes => "series.chunk_read_bytes",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// The bucket a value is counted in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize;
    let block = exp - SUB_BUCKET_BITS as usize + 1;
    let offset = ((value >> (exp - SUB_BUCKET_BITS as usize)) - SUB_BUCKETS as u64) as usize;
    block * SUB_BUCKETS + offset
}

/// Smallest value counted in bucket `index`.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    let block = index / SUB_BUCKETS;
    let offset = (index % SUB_BUCKETS) as u64;
    if block == 0 {
        offset
    } else {
        (SUB_BUCKETS as u64 + offset) << (block - 1)
    }
}

/// Largest value counted in bucket `index` (inclusive — integer `le`).
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 == BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

/// The midpoint quantile estimates report for bucket `index`.
#[inline]
fn bucket_midpoint(index: usize) -> u64 {
    let lower = bucket_lower(index);
    lower + (bucket_upper(index) - lower) / 2
}

/// A lock-free log-bucketed histogram of `u64` observations; see the
/// [module docs](self) for the bucketing math and error bound.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Upper bound on the relative error of any quantile estimate:
    /// `|estimate - exact| <= exact / 64` (see the [module docs](self)).
    pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// Creates an empty histogram (one allocation for the bucket array).
    pub fn new() -> Histogram {
        crate::note_state_allocation();
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free: five relaxed atomic updates.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Dense per-bucket counts ([`BUCKET_COUNT`] entries).
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds `other`'s observations into `self` bucket-wise. Associative,
    /// commutative, and independent of recording order; `other` is
    /// unchanged. Both sides may keep recording concurrently (the merge is
    /// then a momentary snapshot of `other`).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Nearest-rank quantile estimate (`q` in `[0, 1]`), accurate to
    /// [`Histogram::RELATIVE_ERROR`]; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.counts(), q)
    }

    /// Snapshots the histogram into a plain [`HistReport`] (exact min/max,
    /// midpoint quantiles, sparse cumulative buckets).
    pub fn report(&self) -> HistReport {
        let mut report = report_from_counts(&self.counts(), self.sum());
        if report.count > 0 {
            report.min = self.min();
            report.max = self.max();
        }
        report
    }
}

/// Nearest-rank quantile estimate over dense bucket `counts`; 0 when empty.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (index, &n) in counts.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_midpoint(index);
        }
    }
    bucket_midpoint(counts.len().saturating_sub(1))
}

/// Plain-data snapshot of one histogram, as carried by
/// [`RunReport`](crate::RunReport) and rendered to `/metrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistReport {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (bucket lower bound when built from counts).
    pub min: u64,
    /// Largest observation (bucket upper bound when built from counts).
    pub max: u64,
    /// Median estimate (bucket midpoint, nearest rank).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate.
    pub p999: u64,
    /// Sparse cumulative buckets, ascending: `(upper, n)` means `n`
    /// observations were `<= upper` (inclusive integer `le`). Only buckets
    /// whose own count is non-zero appear; the final `n` equals `count`.
    pub buckets: Vec<(u64, u64)>,
}

/// Builds a [`HistReport`] from dense bucket counts (e.g. the difference
/// of two [`Histogram::counts`] snapshots, which benchmarks use to report
/// per-phase distributions). `min`/`max` are the tightest bucket bounds —
/// within one bucket width of the exact extremes.
pub fn report_from_counts(counts: &[u64], sum: u64) -> HistReport {
    let count: u64 = counts.iter().sum();
    let mut buckets = Vec::new();
    let mut cumulative = 0u64;
    let mut min = 0u64;
    let mut max = 0u64;
    for (index, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if cumulative == 0 {
            min = bucket_lower(index);
        }
        cumulative += n;
        max = bucket_upper(index);
        buckets.push((bucket_upper(index), cumulative));
    }
    HistReport {
        count,
        sum,
        min,
        max,
        p50: quantile_from_counts(counts, 0.50),
        p90: quantile_from_counts(counts, 0.90),
        p99: quantile_from_counts(counts, 0.99),
        p999: quantile_from_counts(counts, 0.999),
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_names_are_unique_and_indices_dense() {
        let mut names: Vec<_> = Hist::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Hist::COUNT);
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    #[test]
    fn bucket_boundaries_tile_the_u64_range() {
        // Every bucket starts where the previous one ends, and indexing is
        // consistent with the bounds at and around every boundary.
        for index in 0..BUCKET_COUNT {
            let lower = bucket_lower(index);
            let upper = bucket_upper(index);
            assert!(lower <= upper, "bucket {index}");
            assert_eq!(bucket_index(lower), index, "lower of {index}");
            assert_eq!(bucket_index(upper), index, "upper of {index}");
            if index + 1 < BUCKET_COUNT {
                assert_eq!(bucket_upper(index) + 1, bucket_lower(index + 1));
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn small_values_are_exact_and_large_values_bounded() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Values < 64 sit in unit-width buckets: the median of 0..=63 is
        // exact under nearest-rank.
        assert_eq!(h.quantile(0.5), 31);
        let h = Histogram::new();
        h.record(1_000_000);
        let est = h.quantile(0.99);
        let err = est.abs_diff(1_000_000);
        assert!(
            err as f64 <= 1_000_000.0 * Histogram::RELATIVE_ERROR,
            "estimate {est} off by {err}"
        );
    }

    #[test]
    fn report_has_cumulative_buckets_and_exact_extremes() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1_000, 1_000_000] {
            h.record(v);
        }
        let r = h.report();
        assert_eq!(r.count, 5);
        assert_eq!(r.sum, 1_001_060);
        assert_eq!((r.min, r.max), (10, 1_000_000));
        assert_eq!(r.buckets.last().expect("buckets").1, 5);
        assert!(r.buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(r.buckets.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p999);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let v = v * 37 % 10_000;
            if v % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.counts(), all.counts());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let r = h.report();
        assert_eq!(r, HistReport::default());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
    }
}
