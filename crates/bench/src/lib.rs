//! # periodica-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Sect. 4), plus Criterion micro/macro benches.
//!
//! Each `fig*`/`table*` binary prints the same rows/series the paper
//! reports and writes CSV + JSON into `results/` (override with
//! `PERIODICA_RESULTS`). Absolute numbers are re-measured on this crate's
//! surrogates; the reproduction targets are the *shapes*: who wins, decay
//! trends, bias directions, which periods surface.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod workloads;

pub use harness::{measure, ExperimentWriter};
