//! Shared workload builders for the experiment binaries.
//!
//! Mirrors the paper's synthetic setup (Sect. 4): repeat a random pattern
//! of length `P` drawn from a uniform or normal symbol distribution over an
//! alphabet of 10, then optionally corrupt with replacement / insertion /
//! deletion noise.

use periodica_series::generate::{GeneratedSeries, PeriodicSeriesSpec, SymbolDistribution};
use periodica_series::noise::{NoiseKind, NoiseSpec};
use periodica_series::SymbolSeries;

/// The paper's synthetic alphabet size.
pub const PAPER_SIGMA: usize = 10;

/// The two (distribution, period) pairs every correctness figure uses.
pub fn paper_settings() -> [(SymbolDistribution, usize); 4] {
    [
        (SymbolDistribution::Uniform, 25),
        (SymbolDistribution::Normal { std_dev: 1.5 }, 25),
        (SymbolDistribution::Uniform, 32),
        (SymbolDistribution::Normal { std_dev: 1.5 }, 32),
    ]
}

/// An inerrant synthetic series.
pub fn inerrant(
    distribution: SymbolDistribution,
    period: usize,
    length: usize,
    seed: u64,
) -> GeneratedSeries {
    PeriodicSeriesSpec {
        length,
        period,
        alphabet_size: PAPER_SIGMA,
        distribution,
    }
    .generate(seed)
    .expect("valid synthetic spec")
}

/// A noisy synthetic series: inerrant, then the given mixture at `ratio`.
pub fn noisy(
    distribution: SymbolDistribution,
    period: usize,
    length: usize,
    mix: &[NoiseKind],
    ratio: f64,
    seed: u64,
) -> SymbolSeries {
    let g = inerrant(distribution, period, length, seed);
    NoiseSpec::new(mix.to_vec(), ratio)
        .expect("valid noise spec")
        .apply(&g.series, seed ^ 0x5EED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use periodica_core::period_confidence;

    #[test]
    fn inerrant_workload_has_unit_confidence_at_its_period() {
        for (dist, period) in paper_settings() {
            let g = inerrant(dist, period, 4 * period * 10, 1);
            let c = period_confidence(&g.series, period);
            assert!((c - 1.0).abs() < 1e-12, "{} P={period}: {c}", dist.label());
        }
    }

    #[test]
    fn noise_lowers_confidence() {
        let clean = inerrant(SymbolDistribution::Uniform, 25, 5_000, 2);
        let corrupted = noisy(
            SymbolDistribution::Uniform,
            25,
            5_000,
            &[NoiseKind::Replacement],
            0.3,
            2,
        );
        let c_clean = period_confidence(&clean.series, 25);
        let c_noisy = period_confidence(&corrupted, 25);
        assert!(c_noisy < c_clean);
        assert!(
            c_noisy > 0.2,
            "replacement noise should degrade gracefully: {c_noisy}"
        );
    }
}
