//! Result recording and timing utilities shared by the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use periodica_obs::json::write_string;

/// Where experiment outputs land (`PERIODICA_RESULTS` or `./results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("PERIODICA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Runs a closure and returns its output together with the wall time.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Records one experiment's rows as CSV (+ a JSON twin) and echoes a
/// human-readable table to stdout.
#[derive(Debug)]
pub struct ExperimentWriter {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentWriter {
    /// Starts an experiment record with a CSV header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        println!("== {name} ==");
        ExperimentWriter {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells) and echoes it.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        println!("  {}", cells.join("\t"));
        self.rows.push(cells.to_vec());
    }

    /// Convenience for mixed displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Writes `results/<name>.csv` and `results/<name>.json`.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let csv_path = dir.join(format!("{}.csv", self.name));
        let mut file = fs::File::create(&csv_path)?;
        writeln!(file, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }

        let json_path = dir.join(format!("{}.json", self.name));
        let mut doc = String::from("{\n  \"name\": ");
        write_string(&mut doc, &self.name);
        doc.push_str(",\n  \"header\": ");
        write_string_array(&mut doc, &self.header);
        doc.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            doc.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_string_array(&mut doc, row);
        }
        doc.push_str(if self.rows.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        fs::write(&json_path, doc)?;
        println!("  -> {}", csv_path.display());
        Ok(csv_path)
    }
}

fn write_string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_string(out, item);
    }
    out.push(']');
}

/// Parses `--key value` style CLI overrides used by the experiment
/// binaries (`--length 1048576 --runs 100 --full`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].trim_start_matches("--").to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                pairs.push((arg, argv[i + 1].clone()));
                i += 2;
            } else {
                flags.push(arg);
                i += 1;
            }
        }
        Args { pairs, flags }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_nonzero_time() {
        let (value, elapsed) = measure(|| (0..100_000u64).sum::<u64>());
        assert_eq!(value, 4_999_950_000);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn writer_produces_csv_and_json() {
        let dir = std::env::temp_dir().join(format!("periodica-bench-{}", std::process::id()));
        // SAFETY: test-local env var; experiment binaries read it at startup.
        unsafe { std::env::set_var("PERIODICA_RESULTS", &dir) };
        let mut w = ExperimentWriter::new("unit_test_experiment", &["a", "b"]);
        w.row(&["1".into(), "2".into()]);
        w.row_display(&[&3, &4.5]);
        let path = w.finish().expect("ok");
        let csv = std::fs::read_to_string(&path).expect("ok");
        assert_eq!(csv, "a,b\n1,2\n3,4.5\n");
        let json = std::fs::read_to_string(path.with_extension("json")).expect("ok");
        let doc = periodica_obs::json::parse(&json).expect("valid json");
        let obj = doc.as_object().expect("object");
        assert_eq!(obj["name"].as_str(), Some("unit_test_experiment"));
        match &obj["rows"] {
            periodica_obs::json::Value::Array(rows) => assert_eq!(rows.len(), 2),
            other => panic!("rows should be an array, got {other:?}"),
        }
        unsafe { std::env::remove_var("PERIODICA_RESULTS") };
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn writer_rejects_ragged_rows() {
        let mut w = ExperimentWriter::new("ragged", &["a", "b"]);
        w.row(&["only-one".into()]);
    }
}
