//! Table 2 — periodic single-symbol patterns at the expected periods
//! (retail period 24, power period 7) per periodicity threshold.
//!
//! Each pattern is reported as the paper does: a `(symbol, position)` pair,
//! e.g. `(b, 7)` meaning "level b recurs at hour 7 of the day". Expected
//! shapes: nothing at 100%, the overnight-closed hours (`a` at the closed
//! positions) and off-peak levels appearing as the threshold drops, with
//! lower-threshold rows containing the higher-threshold rows.
//!
//! Usage: `table2 [--retail-days 456] [--power-days 365]`.

use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_datagen::{PowerConfig, RetailConfig};
use periodica_series::SymbolSeries;

fn single_patterns(series: &SymbolSeries, threshold: f64, period: usize) -> Vec<String> {
    let detection = PeriodicityDetector::new(
        DetectorConfig {
            threshold,
            min_period: period,
            max_period: Some(period),
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(series)
    .expect("detection succeeds");
    detection
        .at_period(period)
        .iter()
        .map(|sp| format!("({},{})", series.alphabet().name(sp.symbol), sp.phase))
        .collect()
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let retail_days = args.get("retail-days", 456usize);
    let power_days = args.get("power-days", 365usize);

    let retail = RetailConfig {
        days: retail_days,
        ..Default::default()
    }
    .generate_series()
    .expect("retail surrogate generates");
    let power = PowerConfig {
        days: power_days,
        ..Default::default()
    }
    .generate_series()
    .expect("power surrogate generates");

    let mut writer = ExperimentWriter::new(
        "table2_single_symbol_patterns",
        &[
            "threshold_pct",
            "retail_p24_count",
            "retail_p24_patterns",
            "power_p7_count",
            "power_p7_patterns",
        ],
    );

    for pct in (10..=100).rev().step_by(10) {
        let threshold = pct as f64 / 100.0;
        let rp = single_patterns(&retail, threshold, 24);
        let pp = single_patterns(&power, threshold, 7);
        let clip = |v: &[String]| {
            if v.is_empty() {
                "-".to_string()
            } else if v.len() <= 8 {
                v.join(" ")
            } else {
                format!("{} ...", v[..8].join(" "))
            }
        };
        writer.row(&[
            pct.to_string(),
            rp.len().to_string(),
            clip(&rp),
            pp.len().to_string(),
            clip(&pp),
        ]);
    }
    writer.finish()?;
    Ok(())
}
