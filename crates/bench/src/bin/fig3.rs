//! Figure 3 — correctness of the obscure periodic patterns mining
//! algorithm.
//!
//! Panel (a): inerrant synthetic data; the confidence (minimum periodicity
//! threshold needed to detect) of the embedded period and its multiples
//! must be 1. Panel (b): noisy data; confidence decays but stays high
//! (paper: above ~0.7) and is *unbiased* in the period (contrast with
//! Fig. 4). The paper's "above 70%" figure corresponds to
//! alignment-preserving (replacement) noise — with ratio r the surviving
//! pair confidence is ~(1-r)^2, i.e. ~0.72 at 15%; insertion/deletion
//! noise shifts the whole suffix and is studied separately in Fig. 6.
//!
//! Usage: `fig3 [--length 131072] [--runs 5] [--noise 0.15] [--multiples 8]
//! [--full]` (`--full` = the paper's 1M symbols, 100 runs).

use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_bench::workloads::{inerrant, noisy, paper_settings};
use periodica_core::period_confidence;
use periodica_series::noise::NoiseKind;

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let full = args.flag("full");
    let length = args.get("length", if full { 1 << 20 } else { 1 << 17 });
    let runs = args.get("runs", if full { 100 } else { 5 });
    let noise_ratio = args.get("noise", 0.15);
    let multiples = args.get("multiples", 8usize);

    let mut writer = ExperimentWriter::new(
        "fig3_correctness",
        &[
            "panel",
            "distribution",
            "P",
            "multiple",
            "period",
            "confidence",
        ],
    );

    for (panel, is_noisy) in [("a_inerrant", false), ("b_noisy", true)] {
        for (dist, period) in paper_settings() {
            for k in 1..=multiples {
                let target = k * period;
                let mut total = 0.0;
                for run in 0..runs {
                    let seed = run as u64 * 7919 + k as u64;
                    let series = if is_noisy {
                        noisy(
                            dist,
                            period,
                            length,
                            &[NoiseKind::Replacement],
                            noise_ratio,
                            seed,
                        )
                    } else {
                        inerrant(dist, period, length, seed).series
                    };
                    total += period_confidence(&series, target);
                }
                let confidence = total / runs as f64;
                writer.row(&[
                    panel.into(),
                    dist.label().into(),
                    period.to_string(),
                    format!("{k}P"),
                    target.to_string(),
                    format!("{confidence:.4}"),
                ]);
            }
        }
    }
    writer.finish()?;
    Ok(())
}
