//! Engine shoot-out for the transform-sharing spectrum pipeline.
//!
//! Times all four [`MatchEngine`]s at (sigma = 10, n = 2^17) over the full
//! period range (`max_period = n/2`) and the bounded-lag scenario
//! (`max_period = n/64`), against a faithful replication of the seed
//! spectrum engine (three NTTs per symbol, a fresh plan per call, per-call
//! buffer allocation). Every spectrum is asserted bit-identical before any
//! ratio is reported. Results land in `BENCH_engines.json` at the repo
//! root.
//!
//! Deliberately std-only (hand-rolled xorshift input, hand-rolled JSON) so
//! the binary runs in stripped-down environments with no extra crates.

use std::sync::Arc;
use std::time::Instant;

use periodica_core::engine::{
    BoundedLagPolicy, EngineKind, MatchSpectrum, ParallelSpectrumEngine, SpectrumEngine,
};
use periodica_core::MatchEngine;
use periodica_obs::{self as obs, Counter, MetricsRecorder};
use periodica_series::{Alphabet, SymbolId, SymbolSeries};
use periodica_transform::ntt;
use periodica_transform::simd::{self, SimdLevel};

const SIGMA: usize = 10;
const N: usize = 1 << 17;

/// The seed's NTT plan, frozen verbatim from the pre-rewrite sources: one
/// flat twiddle table read at stride `len/width` (the current plan stores
/// stage-major tables and runs a bounds-check-free butterfly), rebuilt per
/// engine call. Kept here so the baseline measures the seed as shipped,
/// not the seed pipeline running on today's faster transform.
struct SeedNtt {
    len: usize,
    fwd_twiddles: Vec<u64>,
    inv_twiddles: Vec<u64>,
    len_inv: u64,
    swaps: Vec<(u32, u32)>,
}

impl SeedNtt {
    fn new(len: usize) -> Self {
        let root = ntt::primitive_root_of_unity(len).expect("root");
        let root_inv = ntt::mod_inv(root);
        let half = (len / 2).max(1);
        let mut fwd_twiddles = Vec::with_capacity(half);
        let mut inv_twiddles = Vec::with_capacity(half);
        let (mut f, mut i) = (1u64, 1u64);
        for _ in 0..half {
            fwd_twiddles.push(f);
            inv_twiddles.push(i);
            f = ntt::mod_mul(f, root);
            i = ntt::mod_mul(i, root_inv);
        }
        SeedNtt {
            len,
            fwd_twiddles,
            inv_twiddles,
            len_inv: ntt::mod_inv(len as u64),
            // The permutation is data-layout-independent, so the frozen
            // replica can share the library's swap builder.
            swaps: ntt::bit_reversal_swaps(len),
        }
    }

    fn butterfly_passes(&self, buf: &mut [u64], twiddles: &[u64]) {
        let n = self.len;
        for &(i, j) in &self.swaps {
            buf.swap(i as usize, j as usize);
        }
        let mut width = 2usize;
        while width <= n {
            let half = width / 2;
            let stride = n / width;
            for base in (0..n).step_by(width) {
                let mut tw = 0usize;
                for off in 0..half {
                    let a = buf[base + off];
                    let b = ntt::mod_mul(buf[base + off + half], twiddles[tw]);
                    buf[base + off] = ntt::mod_add(a, b);
                    buf[base + off + half] = ntt::mod_sub(a, b);
                    tw += stride;
                }
            }
            width *= 2;
        }
    }

    fn forward(&self, buf: &mut [u64]) {
        self.butterfly_passes(buf, &self.fwd_twiddles);
    }

    fn inverse(&self, buf: &mut [u64]) {
        self.butterfly_passes(buf, &self.inv_twiddles);
        for v in buf.iter_mut() {
            *v = ntt::mod_mul(*v, self.len_inv);
        }
    }
}

/// The seed's spectrum engine, replicated verbatim from the pre-rewrite
/// sources: a plan built per `match_spectrum` call, a forward transform of
/// the signal AND of its reversed copy plus the inverse (three transforms
/// per symbol), and fresh `fx`/`fr`/indicator allocations every call.
struct SeedSpectrumEngine;

impl SeedSpectrumEngine {
    fn match_spectrum(&self, series: &SymbolSeries, max_period: usize) -> MatchSpectrum {
        let n = series.len();
        let size = (2 * n - 1).next_power_of_two();
        let plan = SeedNtt::new(size);
        let mut per_symbol = Vec::with_capacity(series.sigma());
        for sym in series.alphabet().ids() {
            let indicator = series.indicator(sym);
            let mut fx = vec![0u64; size];
            fx[..n].copy_from_slice(&indicator);
            let mut fr = vec![0u64; size];
            for (dst, &src) in fr[..n].iter_mut().zip(indicator.iter().rev()) {
                *dst = src;
            }
            plan.forward(&mut fx);
            plan.forward(&mut fr);
            for (a, b) in fx.iter_mut().zip(&fr) {
                *a = ntt::mod_mul(*a, *b);
            }
            plan.inverse(&mut fx);
            let auto = fx[n - 1..2 * n - 1].to_vec();
            let mut row = vec![0u64; max_period + 1];
            let upto = max_period.min(n - 1);
            row[..=upto].copy_from_slice(&auto[..=upto]);
            per_symbol.push(row);
        }
        MatchSpectrum::new(n, max_period, per_symbol)
    }
}

/// Deterministic sigma-symbol series with a planted period-24 rhythm on
/// symbol 0 (xorshift64 background; no external RNG crate).
fn make_series() -> SymbolSeries {
    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let ids: Vec<SymbolId> = (0..N)
        .map(|i| {
            if i % 24 == 5 && rng() % 10 != 0 {
                SymbolId::from_index(0)
            } else {
                SymbolId::from_index(1 + (rng() % (SIGMA as u64 - 1)) as usize)
            }
        })
        .collect();
    SymbolSeries::from_ids(ids, alphabet).expect("series")
}

/// Best-of-`iters` wall time plus the (identical) spectrum.
fn time_engine<F: FnMut() -> MatchSpectrum>(iters: usize, mut f: F) -> (f64, MatchSpectrum) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t = Instant::now();
        let sp = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(sp);
    }
    (best, out.expect("at least one iteration"))
}

fn assert_identical(scenario: &str, reference: &MatchSpectrum, others: &[(&str, &MatchSpectrum)]) {
    for (name, sp) in others {
        for p in 0..=reference.max_period() {
            for k in 0..SIGMA {
                let sym = SymbolId::from_index(k);
                assert_eq!(
                    sp.matches(sym, p),
                    reference.matches(sym, p),
                    "{scenario}: {name} diverges at p={p} k={k}"
                );
            }
        }
    }
}

/// The engine-phase counters embedded per scenario: NTT plan-cache traffic,
/// transforms executed, which SIMD kernel ran them, and autocorrelation
/// batches. The seed replica above predates the telemetry layer, so the
/// deltas cover only today's pipeline.
const ENGINE_COUNTERS: [(Counter, &str); 8] = [
    (Counter::NttPlanCacheHit, "ntt.plan_cache.hit"),
    (Counter::NttPlanCacheMiss, "ntt.plan_cache.miss"),
    (Counter::NttForward, "ntt.forward"),
    (Counter::NttInverse, "ntt.inverse"),
    (Counter::NttSimdAvx512, "ntt.simd.avx512"),
    (Counter::NttSimdAvx2, "ntt.simd.avx2"),
    (Counter::NttSimdScalar, "ntt.simd.scalar"),
    (Counter::AutocorrBatches, "spectrum.autocorr_batches"),
];

fn snapshot(rec: &MetricsRecorder) -> [u64; 8] {
    ENGINE_COUNTERS.map(|(c, _)| rec.counter(c))
}

/// `"counter_deltas": { ... }` for one scenario's timed runs.
fn deltas_json(before: [u64; 8], after: [u64; 8], indent: &str) -> String {
    let rows: Vec<String> = ENGINE_COUNTERS
        .iter()
        .zip(before.iter().zip(after))
        .map(|((_, name), (b, a))| format!("{indent}  \"{name}\": {}", a - b))
        .collect();
    format!("{{\n{}\n{indent}}}", rows.join(",\n"))
}

/// `--check-dispatch`: exit nonzero if the hardware supports AVX2 but the
/// dispatcher silently resolved to scalar without an explicit override —
/// the CI smoke test that the vector path cannot rot unnoticed.
fn check_dispatch() -> ! {
    let active = simd::active();
    println!(
        "simd dispatch: active={} ({} lanes), detected={}",
        active.name(),
        active.lanes(),
        simd::detected().name()
    );
    let forced = std::env::var_os("PERIODICA_FORCE_SCALAR").is_some()
        || std::env::var_os("PERIODICA_SIMD").is_some();
    #[cfg(target_arch = "x86_64")]
    let hw_vector = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let hw_vector = false;
    if hw_vector && !forced && active == SimdLevel::Scalar {
        eprintln!("error: AVX2-capable CPU but the dispatcher fell back to scalar");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Scalar-vs-dispatched timing of the raw transform kernels at the spectrum
/// engine's own plan size, outputs asserted bit-identical first.
fn time_ntt_kernels() -> (usize, f64, f64) {
    let size = (2 * N - 1).next_power_of_two();
    let scalar = ntt::shared_plan_with(size, SimdLevel::Scalar).expect("scalar plan");
    let active = ntt::shared_plan(size).expect("active plan");
    let mut state = 0xA5A5_5A5A_DEAD_BEEF_u64;
    let input: Vec<u64> = (0..size)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % ntt::P
        })
        .collect();
    let mut via_scalar = input.clone();
    scalar.forward(&mut via_scalar);
    let mut via_active = input.clone();
    active.forward(&mut via_active);
    assert_eq!(via_scalar, via_active, "kernel outputs diverge");
    scalar.inverse(&mut via_scalar);
    active.inverse(&mut via_active);
    assert_eq!(via_scalar, input, "scalar round trip");
    assert_eq!(via_active, input, "vector round trip");

    let time_plan = |plan: &ntt::Ntt| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let mut buf = input.clone();
            let t = Instant::now();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    (size, time_plan(&scalar), time_plan(&active))
}

fn main() {
    if std::env::args().any(|a| a == "--check-dispatch") {
        check_dispatch();
    }
    let simd_kernel = simd::active().name();
    let simd_lanes = simd::active().lanes();
    eprintln!("simd kernel: {simd_kernel} ({simd_lanes} lanes)");

    let (ntt_size, t_ntt_scalar, t_ntt_simd) = time_ntt_kernels();
    let ntt_kernel_speedup = t_ntt_scalar / t_ntt_simd;
    eprintln!(
        "ntt kernels (fwd+inv, size {ntt_size}): scalar {t_ntt_scalar:.4}s | \
         {simd_kernel} {t_ntt_simd:.4}s ({ntt_kernel_speedup:.2}x)"
    );

    let series = make_series();
    let seed = SeedSpectrumEngine;
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());

    // --- Scenario 1: full period range (max_period = n/2). ---
    let max_p = N / 2;
    eprintln!("full range: n={N} sigma={SIGMA} max_period={max_p}");
    let full_before = snapshot(&recorder);
    let (t_seed_full, sp_seed) = time_engine(3, || seed.match_spectrum(&series, max_p));
    let (t_naive_full, sp_naive) = time_engine(1, || {
        EngineKind::Naive
            .build()
            .match_spectrum(&series, max_p)
            .expect("naive")
    });
    let (t_bitset_full, sp_bitset) = time_engine(1, || {
        EngineKind::Bitset
            .build()
            .match_spectrum(&series, max_p)
            .expect("bitset")
    });
    let (t_spec_full, sp_spec) = time_engine(3, || {
        SpectrumEngine::new()
            .match_spectrum(&series, max_p)
            .expect("spectrum")
    });
    let (t_par_full, sp_par) = time_engine(3, || {
        ParallelSpectrumEngine::new()
            .match_spectrum(&series, max_p)
            .expect("parallel")
    });
    let full_after = snapshot(&recorder);
    assert_identical(
        "full",
        &sp_naive,
        &[
            ("seed", &sp_seed),
            ("bitset", &sp_bitset),
            ("spectrum", &sp_spec),
            ("parallel", &sp_par),
        ],
    );
    let full_speedup = t_seed_full / t_spec_full;
    eprintln!(
        "  seed 3-NTT {t_seed_full:.3}s | naive {t_naive_full:.3}s | bitset {t_bitset_full:.3}s \
         | spectrum {t_spec_full:.3}s ({full_speedup:.2}x vs seed) | parallel {t_par_full:.3}s"
    );

    // --- Scenario 2: bounded lag (max_period = n/64). ---
    let max_p_b = N / 64;
    eprintln!("bounded lag: max_period={max_p_b}");
    let bounded_before = snapshot(&recorder);
    let (t_seed_b, sp_seed_b) = time_engine(3, || seed.match_spectrum(&series, max_p_b));
    let (t_naive_b, sp_naive_b) = time_engine(1, || {
        EngineKind::Naive
            .build()
            .match_spectrum(&series, max_p_b)
            .expect("naive")
    });
    let (t_bitset_b, sp_bitset_b) = time_engine(3, || {
        EngineKind::Bitset
            .build()
            .match_spectrum(&series, max_p_b)
            .expect("bitset")
    });
    let (t_auto_b, sp_auto_b) = time_engine(5, || {
        SpectrumEngine::with_policy(BoundedLagPolicy::Auto)
            .match_spectrum(&series, max_p_b)
            .expect("auto")
    });
    let (t_never_b, sp_never_b) = time_engine(3, || {
        SpectrumEngine::with_policy(BoundedLagPolicy::Never)
            .match_spectrum(&series, max_p_b)
            .expect("never")
    });
    let (t_par_b, sp_par_b) = time_engine(5, || {
        ParallelSpectrumEngine::new()
            .match_spectrum(&series, max_p_b)
            .expect("parallel")
    });
    let bounded_after = snapshot(&recorder);
    assert_identical(
        "bounded",
        &sp_naive_b,
        &[
            ("seed", &sp_seed_b),
            ("bitset", &sp_bitset_b),
            ("spectrum/auto", &sp_auto_b),
            ("spectrum/never", &sp_never_b),
            ("parallel", &sp_par_b),
        ],
    );
    let bounded_speedup = t_seed_b / t_auto_b;
    eprintln!(
        "  seed 3-NTT {t_seed_b:.3}s | naive {t_naive_b:.3}s | bitset {t_bitset_b:.3}s \
         | auto {t_auto_b:.3}s ({bounded_speedup:.2}x vs seed) | full-2ntt {t_never_b:.3}s \
         | parallel {t_par_b:.3}s"
    );

    obs::uninstall();
    let full_deltas = deltas_json(full_before, full_after, "    ");
    let bounded_deltas = deltas_json(bounded_before, bounded_after, "    ");
    let json = format!(
        "{{\n  \"config\": {{ \"sigma\": {SIGMA}, \"n\": {N}, \
         \"simd_kernel\": \"{simd_kernel}\", \"simd_lanes\": {simd_lanes} }},\n  \
         \"ntt_kernel\": {{\n    \"size\": {ntt_size},\n    \
         \"scalar_secs\": {t_ntt_scalar:.6},\n    \
         \"simd_secs\": {t_ntt_simd:.6},\n    \
         \"speedup\": {ntt_kernel_speedup:.3}\n  }},\n  \
         \"full_range\": {{\n    \"max_period\": {max_p},\n    \
         \"seed_3ntt_secs\": {t_seed_full:.6},\n    \
         \"naive_secs\": {t_naive_full:.6},\n    \
         \"bitset_secs\": {t_bitset_full:.6},\n    \
         \"spectrum_secs\": {t_spec_full:.6},\n    \
         \"parallel_spectrum_secs\": {t_par_full:.6},\n    \
         \"spectrum_speedup_vs_seed\": {full_speedup:.3},\n    \
         \"counter_deltas\": {full_deltas}\n  }},\n  \
         \"bounded_lag\": {{\n    \"max_period\": {max_p_b},\n    \
         \"seed_3ntt_secs\": {t_seed_b:.6},\n    \
         \"naive_secs\": {t_naive_b:.6},\n    \
         \"bitset_secs\": {t_bitset_b:.6},\n    \
         \"spectrum_auto_secs\": {t_auto_b:.6},\n    \
         \"spectrum_full_secs\": {t_never_b:.6},\n    \
         \"parallel_spectrum_secs\": {t_par_b:.6},\n    \
         \"spectrum_speedup_vs_seed\": {bounded_speedup:.3},\n    \
         \"counter_deltas\": {bounded_deltas}\n  }},\n  \
         \"bit_identical\": true\n}}\n"
    );
    let out_path = std::env::var("BENCH_ENGINES_OUT").unwrap_or_else(|_| {
        match option_env!("CARGO_MANIFEST_DIR") {
            Some(dir) => format!("{dir}/../../BENCH_engines.json"),
            None => "BENCH_engines.json".to_string(),
        }
    });
    std::fs::write(&out_path, &json).expect("write BENCH_engines.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
