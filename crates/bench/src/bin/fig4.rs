//! Figure 4 — correctness of the periodic-trends baseline (Indyk et al.)
//! under the same workloads as Fig. 3.
//!
//! Confidence here is the *normalized candidacy rank* of each period in
//! the baseline's output ordering. Expected shapes: near-1 confidences at
//! the embedded multiples on inerrant data, and the paper's reported *bias
//! toward larger periods* — larger multiples keep high rank under noise
//! while small ones degrade (unlike our algorithm's flat profile in
//! Fig. 3b). The bias summary rows quantify it directly.
//!
//! Usage: `fig4 [--length 65536] [--runs 3] [--noise 0.04] [--sketches 32]
//! [--full]`.

use periodica_baselines::indyk::{PeriodicTrends, PeriodicTrendsConfig};
use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_bench::workloads::{inerrant, noisy, paper_settings};
use periodica_series::noise::NoiseKind;

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let full = args.flag("full");
    let length = args.get("length", if full { 1 << 20 } else { 1 << 16 });
    let runs = args.get("runs", if full { 10 } else { 3 });
    let noise_ratio = args.get("noise", 0.15);
    let sketches = args.get("sketches", 32usize);
    let multiples = args.get("multiples", 8usize);

    let mut writer = ExperimentWriter::new(
        "fig4_periodic_trends",
        &[
            "panel",
            "distribution",
            "P",
            "multiple",
            "period",
            "rank_confidence",
        ],
    );

    for (panel, is_noisy) in [("a_inerrant", false), ("b_noisy", true)] {
        for (dist, period) in paper_settings() {
            // Rank confidences per multiple, averaged over runs.
            let mut sums = vec![0.0; multiples + 1];
            for run in 0..runs {
                let seed = run as u64 * 104_729 + 17;
                let series = if is_noisy {
                    noisy(
                        dist,
                        period,
                        length,
                        &[NoiseKind::Replacement],
                        noise_ratio,
                        seed,
                    )
                } else {
                    inerrant(dist, period, length, seed).series
                };
                let trends = PeriodicTrends::new(PeriodicTrendsConfig {
                    sketches: Some(sketches),
                    seed,
                    ..Default::default()
                });
                let max_p = (multiples * period).min(series.len() / 2);
                let report = trends.analyze(&series, max_p);
                for (k, sum) in sums.iter_mut().enumerate().skip(1) {
                    *sum += report.confidence_of(k * period);
                }
            }
            for (k, &sum) in sums.iter().enumerate().skip(1) {
                writer.row(&[
                    panel.into(),
                    dist.label().into(),
                    period.to_string(),
                    format!("{k}P"),
                    (k * period).to_string(),
                    format!("{:.4}", sum / runs as f64),
                ]);
            }
            // Bias summary: mean confidence of the small half vs large half
            // of the multiples (the paper's "favors the higher period
            // values" observation shows as large > small under noise).
            let half = multiples / 2;
            let small: f64 = sums[1..=half].iter().sum::<f64>() / (half * runs) as f64;
            let large: f64 =
                sums[half + 1..=multiples].iter().sum::<f64>() / ((multiples - half) * runs) as f64;
            writer.row(&[
                panel.into(),
                dist.label().into(),
                period.to_string(),
                "bias(small-half)".into(),
                "-".into(),
                format!("{small:.4}"),
            ]);
            writer.row(&[
                panel.into(),
                dist.label().into(),
                period.to_string(),
                "bias(large-half)".into(),
                "-".into(),
                format!("{large:.4}"),
            ]);
        }
    }
    writer.finish()?;
    Ok(())
}
