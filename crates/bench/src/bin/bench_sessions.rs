//! Multi-tenant session-manager benchmark: ingest throughput and batch
//! latency at 1k and 10k concurrent streaming sessions.
//!
//! Two phases over the same batched workload (rounds of 64-session
//! batches, 32 symbols per session per batch):
//!
//! * **resident_1k** — 1,000 sessions, no eviction budget: the pure
//!   batched-ingest path (shared flush scratch, hot NTT plan cache).
//! * **evicting_10k** — 10,000 sessions under a resident-byte budget
//!   sized well below the working set, so every round churns through
//!   park (snapshot + drop) and restore (decode + rebuild) cycles. The
//!   run asserts the budget holds, that at least 1k sessions stay
//!   resident, and that a churned session still detects its planted
//!   period — eviction must be invisible to the mining answer.
//!
//! Reports sessions/sec, p50/p99 batch latency, and the session counter
//! deltas (activations, batches, evictions, restore hits). Results land
//! in `BENCH_sessions.json` at the repo root. Deliberately std-only
//! (hand-rolled JSON); `--smoke` shrinks both phases for CI and skips
//! the file write.

use std::sync::Arc;
use std::time::Instant;

use periodica_core::{EvictionPolicy, SessionId, SessionManager};
use periodica_obs::{self as obs, Counter, MetricsRecorder};
use periodica_series::{Alphabet, SymbolId};

const SIGMA: usize = 8;
const WINDOW: usize = 64;
const BATCH_SESSIONS: usize = 64;
const SYMBOLS_PER_BATCH: usize = 32;

const SESSION_COUNTERS: [(Counter, &str); 5] = [
    (Counter::SessionsActive, "session.sessions_active"),
    (Counter::SessionBatchesIngested, "session.batches_ingested"),
    (Counter::SessionEvictions, "session.evictions"),
    (Counter::SessionRestoreHits, "session.restore_hits"),
    (Counter::OnlineFlushes, "online.flushes"),
];

fn snapshot(rec: &MetricsRecorder) -> [u64; 5] {
    SESSION_COUNTERS.map(|(c, _)| rec.counter(c))
}

/// Each session streams a clean periodic signal whose period depends on
/// its index, so correctness is checkable per session after any amount
/// of eviction churn.
fn session_period(session: usize) -> usize {
    [4, 6, 8, 12][session % 4]
}

fn symbol_at(session: usize, position: u64) -> SymbolId {
    let p = session_period(session) as u64;
    SymbolId::from_index((((position + session as u64) % p) % SIGMA as u64) as usize)
}

struct PhaseResult {
    name: &'static str,
    sessions: usize,
    rounds: usize,
    batches: usize,
    symbols: usize,
    elapsed_secs: f64,
    sessions_per_sec: f64,
    symbols_per_sec: f64,
    p50_batch_ns: u64,
    p99_batch_ns: u64,
    max_batch_ns: u64,
    resident_after: usize,
    parked_after: usize,
    resident_bytes_after: usize,
    memory_budget: Option<usize>,
    counter_deltas: [u64; 5],
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_phase(
    name: &'static str,
    sessions: usize,
    rounds: usize,
    budget: Option<usize>,
    recorder: &MetricsRecorder,
) -> PhaseResult {
    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let mut manager = SessionManager::builder(alphabet)
        .window(WINDOW)
        .threshold(0.9)
        .flush_block(256)
        .policy(EvictionPolicy {
            max_sessions: None,
            max_resident_bytes: budget,
        })
        .build();
    let ids: Vec<SessionId> = (0..sessions)
        .map(|i| SessionId::from(format!("s{i:05}")))
        .collect();
    let mut positions = vec![0u64; sessions];
    let mut symbol_buf: Vec<Vec<SymbolId>> = vec![Vec::new(); BATCH_SESSIONS];

    let counters_before = snapshot(recorder);
    let mut latencies: Vec<u64> = Vec::with_capacity(rounds * sessions / BATCH_SESSIONS + rounds);
    let mut batches = 0usize;
    let mut symbols = 0usize;
    let started = Instant::now();
    for _ in 0..rounds {
        for chunk in (0..sessions).collect::<Vec<_>>().chunks(BATCH_SESSIONS) {
            for (slot, &s) in symbol_buf.iter_mut().zip(chunk) {
                slot.clear();
                slot.extend((0..SYMBOLS_PER_BATCH as u64).map(|k| symbol_at(s, positions[s] + k)));
                positions[s] += SYMBOLS_PER_BATCH as u64;
            }
            let batch: Vec<(SessionId, &[SymbolId])> = chunk
                .iter()
                .zip(&symbol_buf)
                .map(|(&s, symbols)| (ids[s].clone(), symbols.as_slice()))
                .collect();
            let t = Instant::now();
            manager.ingest_batch(&batch).expect("ingest");
            latencies.push(t.elapsed().as_nanos() as u64);
            batches += 1;
            symbols += chunk.len() * SYMBOLS_PER_BATCH;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let counters_after = snapshot(recorder);

    if let Some(budget) = budget {
        assert!(
            manager.resident_bytes() <= budget,
            "{name}: resident bytes {} exceed the {budget}-byte budget",
            manager.resident_bytes()
        );
        assert!(
            manager.resident_count() >= 1_000,
            "{name}: only {} sessions resident under the budget",
            manager.resident_count()
        );
    }
    assert_eq!(manager.session_count(), sessions, "{name}: sessions lost");
    // A session that lived through the churn still answers correctly.
    let probe = sessions / 2;
    let candidates = manager.candidates(&ids[probe]).expect("candidates");
    assert!(
        candidates.iter().any(|c| c.period == session_period(probe)),
        "{name}: session {probe} lost its planted period {} (got {:?})",
        session_period(probe),
        candidates.iter().map(|c| c.period).collect::<Vec<_>>()
    );

    latencies.sort_unstable();
    let touches = batches * BATCH_SESSIONS;
    let result = PhaseResult {
        name,
        sessions,
        rounds,
        batches,
        symbols,
        elapsed_secs: elapsed,
        sessions_per_sec: touches as f64 / elapsed,
        symbols_per_sec: symbols as f64 / elapsed,
        p50_batch_ns: percentile(&latencies, 0.50),
        p99_batch_ns: percentile(&latencies, 0.99),
        max_batch_ns: latencies.last().copied().unwrap_or(0),
        resident_after: manager.resident_count(),
        parked_after: manager.parked_count(),
        resident_bytes_after: manager.resident_bytes(),
        memory_budget: budget,
        counter_deltas: {
            let mut deltas = [0u64; 5];
            for (slot, (b, a)) in deltas
                .iter_mut()
                .zip(counters_before.iter().zip(counters_after))
            {
                *slot = a - b;
            }
            deltas
        },
    };
    eprintln!(
        "{name}: {} sessions x {} rounds | {:.0} sessions/s, {:.2}M symbols/s | \
         batch p50 {}us p99 {}us | {} resident / {} parked, ~{:.1} MiB | \
         {} evictions, {} restores",
        sessions,
        rounds,
        result.sessions_per_sec,
        result.symbols_per_sec / 1e6,
        result.p50_batch_ns / 1_000,
        result.p99_batch_ns / 1_000,
        result.resident_after,
        result.parked_after,
        result.resident_bytes_after as f64 / (1024.0 * 1024.0),
        result.counter_deltas[2],
        result.counter_deltas[3],
    );
    result
}

fn phase_json(r: &PhaseResult) -> String {
    let deltas: Vec<String> = SESSION_COUNTERS
        .iter()
        .zip(r.counter_deltas)
        .map(|((_, name), d)| format!("        \"{name}\": {d}"))
        .collect();
    format!(
        "    \"{}\": {{\n      \"sessions\": {},\n      \"rounds\": {},\n      \
         \"batches\": {},\n      \"symbols\": {},\n      \
         \"batch_sessions\": {BATCH_SESSIONS},\n      \
         \"symbols_per_session_batch\": {SYMBOLS_PER_BATCH},\n      \
         \"elapsed_secs\": {:.6},\n      \"sessions_per_sec\": {:.1},\n      \
         \"symbols_per_sec\": {:.1},\n      \"p50_batch_ns\": {},\n      \
         \"p99_batch_ns\": {},\n      \"max_batch_ns\": {},\n      \
         \"resident_after\": {},\n      \"parked_after\": {},\n      \
         \"resident_bytes_after\": {},\n      \"memory_budget\": {},\n      \
         \"counter_deltas\": {{\n{}\n      }}\n    }}",
        r.name,
        r.sessions,
        r.rounds,
        r.batches,
        r.symbols,
        r.elapsed_secs,
        r.sessions_per_sec,
        r.symbols_per_sec,
        r.p50_batch_ns,
        r.p99_batch_ns,
        r.max_batch_ns,
        r.resident_after,
        r.parked_after,
        r.resident_bytes_after,
        r.memory_budget
            .map_or("null".to_string(), |b| b.to_string()),
        deltas.join(",\n"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());

    // Phase 1: everything resident; measures the pure batched path.
    let (small_sessions, small_rounds) = if smoke { (128, 2) } else { (1_000, 20) };
    let resident = run_phase("resident_1k", small_sessions, small_rounds, None, &recorder);

    // Phase 2: a byte budget far below the working set (each session
    // costs ~10 KiB resident), forcing park/restore churn every round
    // while still keeping >= 1k sessions resident.
    let (big_sessions, big_rounds, budget) = if smoke {
        (1_200, 2, Some(9 * 1024 * 1024))
    } else {
        (10_000, 5, Some(32 * 1024 * 1024))
    };
    let evicting = run_phase("evicting_10k", big_sessions, big_rounds, budget, &recorder);
    assert!(
        evicting.counter_deltas[2] > 0,
        "the eviction phase never evicted"
    );
    assert!(
        evicting.counter_deltas[3] > 0,
        "the eviction phase never restored"
    );

    obs::uninstall();
    let json = format!(
        "{{\n  \"config\": {{ \"sigma\": {SIGMA}, \"window\": {WINDOW}, \
         \"smoke\": {smoke} }},\n  \"phases\": {{\n{},\n{}\n  }},\n  \
         \"eviction_transparent\": true\n}}\n",
        phase_json(&resident),
        phase_json(&evicting),
    );
    println!("{json}");
    if smoke {
        eprintln!("smoke run: skipping BENCH_sessions.json");
        return;
    }
    let out_path = std::env::var("BENCH_SESSIONS_OUT").unwrap_or_else(|_| {
        match option_env!("CARGO_MANIFEST_DIR") {
            Some(dir) => format!("{dir}/../../BENCH_sessions.json"),
            None => "BENCH_sessions.json".to_string(),
        }
    });
    std::fs::write(&out_path, &json).expect("write BENCH_sessions.json");
    eprintln!("wrote {out_path}");
}
