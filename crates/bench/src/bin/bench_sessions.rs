//! Multi-tenant session-manager benchmark: ingest throughput and batch
//! latency at 1k and 10k concurrent streaming sessions.
//!
//! Three phases over the same batched workload (rounds of 64-session
//! batches, 32 symbols per session per batch):
//!
//! * **resident_1k** — 1,000 sessions, no eviction budget: the pure
//!   batched-ingest path (shared flush scratch, hot NTT plan cache).
//! * **evicting_10k** — 10,000 sessions under a resident-byte budget
//!   sized well below the working set, so every round churns through
//!   park (snapshot + drop) and restore (decode + rebuild) cycles. The
//!   run asserts the budget holds, that at least 1k sessions stay
//!   resident, and that a churned session still detects its planted
//!   period — eviction must be invisible to the mining answer.
//! * **contended_multishard** — the same evicting workload pushed
//!   through a [`ShardedSessionManager`] by several producer threads at
//!   once (each producer owns a disjoint session range and submits its
//!   batches concurrently). Each shard runs its own byte budget, so
//!   park/restore churn happens under contention. Afterwards a sample
//!   of sessions is replayed through a plain single
//!   [`SessionManager`] with no budget at all and the snapshots are
//!   compared byte-for-byte: sharding AND eviction must both be
//!   invisible to the answers.
//!
//! Reports sessions/sec, p50/p99 batch latency, and the session/shard
//! counter deltas (activations, batches, evictions, restore hits,
//! eviction stall time, shard queue depth). Results land in
//! `BENCH_sessions.json` at the repo root. Deliberately std-only
//! (hand-rolled JSON); `--smoke` shrinks all phases for CI and skips
//! the file write.

use std::sync::Arc;
use std::time::Instant;

use periodica_core::{EvictionPolicy, SessionId, SessionManager, ShardedSessionManager};
use periodica_obs::{self as obs, Counter, Hist, HistReport, MetricsRecorder};
use periodica_series::{Alphabet, SymbolId};

const SIGMA: usize = 8;
const WINDOW: usize = 64;
const BATCH_SESSIONS: usize = 64;
const SYMBOLS_PER_BATCH: usize = 32;

const SESSION_COUNTERS: [(Counter, &str); 9] = [
    (Counter::SessionsActive, "session.sessions_active"),
    (Counter::SessionBatchesIngested, "session.batches_ingested"),
    (Counter::SessionEvictions, "session.evictions"),
    (Counter::SessionRestoreHits, "session.restore_hits"),
    (Counter::OnlineFlushes, "online.flushes"),
    (Counter::SessionEvictStallNs, "session.evict_stall_ns"),
    (Counter::ShardBatchesSubmitted, "shard.batches_submitted"),
    (Counter::ShardSubBatches, "shard.sub_batches"),
    (Counter::ShardQueueDepthPeak, "shard.queue_depth_peak"),
];

fn snapshot(rec: &MetricsRecorder) -> [u64; 9] {
    SESSION_COUNTERS.map(|(c, _)| rec.counter(c))
}

/// Streaming histograms diffed per phase (the recorder is shared across
/// phases, so each phase reports the delta of its own observations).
const PHASE_HISTS: [Hist; 3] = [
    Hist::SessionIngestBatchNs,
    Hist::ShardQueueWaitNs,
    Hist::SessionEvictStallNs,
];

/// Dense per-bucket counts + sums of the phase histograms at one instant.
struct HistMark {
    counts: Vec<Vec<u64>>,
    sums: Vec<u64>,
}

fn hist_mark(rec: &MetricsRecorder) -> HistMark {
    HistMark {
        counts: PHASE_HISTS.iter().map(|&h| rec.hist(h).counts()).collect(),
        sums: PHASE_HISTS.iter().map(|&h| rec.hist(h).sum()).collect(),
    }
}

/// One phase's histogram deltas, as `(name, report)` rows (empty
/// histograms are skipped).
fn hist_deltas(before: &HistMark, rec: &MetricsRecorder) -> Vec<(&'static str, HistReport)> {
    PHASE_HISTS
        .iter()
        .enumerate()
        .filter_map(|(i, &h)| {
            let after = rec.hist(h).counts();
            let deltas: Vec<u64> = after
                .iter()
                .zip(&before.counts[i])
                .map(|(a, b)| a - b)
                .collect();
            let report = obs::report_from_counts(&deltas, rec.hist(h).sum() - before.sums[i]);
            (report.count > 0).then(|| (h.name(), report))
        })
        .collect()
}

/// Each session streams a clean periodic signal whose period depends on
/// its index, so correctness is checkable per session after any amount
/// of eviction churn.
fn session_period(session: usize) -> usize {
    [4, 6, 8, 12][session % 4]
}

fn symbol_at(session: usize, position: u64) -> SymbolId {
    let p = session_period(session) as u64;
    SymbolId::from_index((((position + session as u64) % p) % SIGMA as u64) as usize)
}

struct PhaseResult {
    name: &'static str,
    sessions: usize,
    rounds: usize,
    batches: usize,
    symbols: usize,
    elapsed_secs: f64,
    sessions_per_sec: f64,
    symbols_per_sec: f64,
    p50_batch_ns: u64,
    p99_batch_ns: u64,
    max_batch_ns: u64,
    resident_after: usize,
    parked_after: usize,
    resident_bytes_after: usize,
    memory_budget: Option<usize>,
    /// Shard / producer-thread counts for the contended phase.
    shards: Option<usize>,
    producers: Option<usize>,
    /// Sessions whose final snapshot was byte-compared against a plain
    /// unsharded, unbudgeted replay (contended phase only).
    verified_probes: usize,
    counter_deltas: [u64; 9],
    /// Per-phase deltas of the streaming latency histograms, keyed by
    /// histogram name.
    latency_histograms: Vec<(&'static str, HistReport)>,
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_phase(
    name: &'static str,
    sessions: usize,
    rounds: usize,
    budget: Option<usize>,
    recorder: &MetricsRecorder,
) -> PhaseResult {
    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let mut manager = SessionManager::builder(alphabet)
        .window(WINDOW)
        .threshold(0.9)
        .flush_block(256)
        .policy(EvictionPolicy {
            max_sessions: None,
            max_resident_bytes: budget,
        })
        .build();
    let ids: Vec<SessionId> = (0..sessions)
        .map(|i| SessionId::from(format!("s{i:05}")))
        .collect();
    let mut positions = vec![0u64; sessions];
    let mut symbol_buf: Vec<Vec<SymbolId>> = vec![Vec::new(); BATCH_SESSIONS];

    let counters_before = snapshot(recorder);
    let hists_before = hist_mark(recorder);
    let mut latencies: Vec<u64> = Vec::with_capacity(rounds * sessions / BATCH_SESSIONS + rounds);
    let mut batches = 0usize;
    let mut symbols = 0usize;
    let started = Instant::now();
    for _ in 0..rounds {
        for chunk in (0..sessions).collect::<Vec<_>>().chunks(BATCH_SESSIONS) {
            for (slot, &s) in symbol_buf.iter_mut().zip(chunk) {
                slot.clear();
                slot.extend((0..SYMBOLS_PER_BATCH as u64).map(|k| symbol_at(s, positions[s] + k)));
                positions[s] += SYMBOLS_PER_BATCH as u64;
            }
            let batch: Vec<(SessionId, &[SymbolId])> = chunk
                .iter()
                .zip(&symbol_buf)
                .map(|(&s, symbols)| (ids[s].clone(), symbols.as_slice()))
                .collect();
            let t = Instant::now();
            manager.ingest_batch(&batch).expect("ingest");
            latencies.push(t.elapsed().as_nanos() as u64);
            batches += 1;
            symbols += chunk.len() * SYMBOLS_PER_BATCH;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let counters_after = snapshot(recorder);

    if let Some(budget) = budget {
        assert!(
            manager.resident_bytes() <= budget,
            "{name}: resident bytes {} exceed the {budget}-byte budget",
            manager.resident_bytes()
        );
        assert!(
            manager.resident_count() >= 1_000,
            "{name}: only {} sessions resident under the budget",
            manager.resident_count()
        );
    }
    assert_eq!(manager.session_count(), sessions, "{name}: sessions lost");
    // A session that lived through the churn still answers correctly.
    let probe = sessions / 2;
    let candidates = manager.candidates(&ids[probe]).expect("candidates");
    assert!(
        candidates.iter().any(|c| c.period == session_period(probe)),
        "{name}: session {probe} lost its planted period {} (got {:?})",
        session_period(probe),
        candidates.iter().map(|c| c.period).collect::<Vec<_>>()
    );

    latencies.sort_unstable();
    let touches = batches * BATCH_SESSIONS;
    let result = PhaseResult {
        name,
        sessions,
        rounds,
        batches,
        symbols,
        elapsed_secs: elapsed,
        sessions_per_sec: touches as f64 / elapsed,
        symbols_per_sec: symbols as f64 / elapsed,
        p50_batch_ns: percentile(&latencies, 0.50),
        p99_batch_ns: percentile(&latencies, 0.99),
        max_batch_ns: latencies.last().copied().unwrap_or(0),
        resident_after: manager.resident_count(),
        parked_after: manager.parked_count(),
        resident_bytes_after: manager.resident_bytes(),
        memory_budget: budget,
        shards: None,
        producers: None,
        verified_probes: 0,
        counter_deltas: {
            let mut deltas = [0u64; 9];
            for (slot, (b, a)) in deltas
                .iter_mut()
                .zip(counters_before.iter().zip(counters_after))
            {
                *slot = a - b;
            }
            deltas
        },
        latency_histograms: hist_deltas(&hists_before, recorder),
    };
    eprintln!(
        "{name}: {} sessions x {} rounds | {:.0} sessions/s, {:.2}M symbols/s | \
         batch p50 {}us p99 {}us | {} resident / {} parked, ~{:.1} MiB | \
         {} evictions, {} restores",
        sessions,
        rounds,
        result.sessions_per_sec,
        result.symbols_per_sec / 1e6,
        result.p50_batch_ns / 1_000,
        result.p99_batch_ns / 1_000,
        result.resident_after,
        result.parked_after,
        result.resident_bytes_after as f64 / (1024.0 * 1024.0),
        result.counter_deltas[2],
        result.counter_deltas[3],
    );
    result
}

/// The contended phase: `producers` threads hammer one
/// [`ShardedSessionManager`] concurrently, each owning a disjoint
/// contiguous range of the session space. Afterwards ~16 probe sessions
/// are replayed through a plain unsharded, unbudgeted manager and their
/// snapshots compared byte-for-byte.
#[allow(clippy::too_many_arguments)]
fn run_contended_phase(
    name: &'static str,
    sessions: usize,
    rounds: usize,
    shards: usize,
    producers: usize,
    per_shard_budget: Option<usize>,
    recorder: &MetricsRecorder,
) -> PhaseResult {
    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let builder = SessionManager::builder(alphabet.clone())
        .window(WINDOW)
        .threshold(0.9)
        .flush_block(256)
        .policy(EvictionPolicy {
            max_sessions: None,
            max_resident_bytes: per_shard_budget,
        });
    let manager = ShardedSessionManager::new(builder, shards);
    let ids: Vec<SessionId> = (0..sessions)
        .map(|i| SessionId::from(format!("s{i:05}")))
        .collect();

    let counters_before = snapshot(recorder);
    let hists_before = hist_mark(recorder);
    let started = Instant::now();
    // Each producer owns a contiguous range; rounds are NOT synchronized
    // across producers, so shard queues see genuinely mixed traffic.
    let per_producer = sessions.div_ceil(producers);
    let results: Vec<(Vec<u64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let ids = &ids;
                let manager = &manager;
                scope.spawn(move || {
                    let range = (p * per_producer)..(((p + 1) * per_producer).min(sessions));
                    let mut positions = vec![0u64; range.len()];
                    let mut latencies = Vec::new();
                    let mut batches = 0usize;
                    let mut symbols = 0usize;
                    let mut symbol_buf: Vec<Vec<SymbolId>> = vec![Vec::new(); BATCH_SESSIONS];
                    for _ in 0..rounds {
                        let sessions_in_range: Vec<usize> = range.clone().collect();
                        for chunk in sessions_in_range.chunks(BATCH_SESSIONS) {
                            for (slot, &s) in symbol_buf.iter_mut().zip(chunk) {
                                slot.clear();
                                let pos = &mut positions[s - range.start];
                                slot.extend(
                                    (0..SYMBOLS_PER_BATCH as u64).map(|k| symbol_at(s, *pos + k)),
                                );
                                *pos += SYMBOLS_PER_BATCH as u64;
                            }
                            let batch: Vec<(SessionId, &[SymbolId])> = chunk
                                .iter()
                                .zip(&symbol_buf)
                                .map(|(&s, symbols)| (ids[s].clone(), symbols.as_slice()))
                                .collect();
                            let t = Instant::now();
                            manager.ingest_batch(&batch).expect("ingest");
                            latencies.push(t.elapsed().as_nanos() as u64);
                            batches += 1;
                            symbols += chunk.len() * SYMBOLS_PER_BATCH;
                        }
                    }
                    (latencies, batches, symbols)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("producer thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let counters_after = snapshot(recorder);

    let mut latencies: Vec<u64> = Vec::new();
    let mut batches = 0usize;
    let mut symbols = 0usize;
    for (lat, b, s) in results {
        latencies.extend(lat);
        batches += b;
        symbols += s;
    }

    let stats = manager.shard_stats().expect("shard stats");
    if let Some(budget) = per_shard_budget {
        for s in &stats {
            assert!(
                s.resident_bytes <= budget,
                "{name}: shard {} resident bytes {} exceed the {budget}-byte budget",
                s.shard,
                s.resident_bytes
            );
        }
    }
    assert_eq!(
        manager.session_count().expect("session count"),
        sessions,
        "{name}: sessions lost"
    );

    // 1-vs-N transparency: replay probe sessions through a plain manager
    // with NO sharding and NO budget; snapshots must be byte-identical.
    let mut solo = SessionManager::builder(alphabet)
        .window(WINDOW)
        .threshold(0.9)
        .flush_block(256)
        .build();
    let probe_step = (sessions / 16).max(1);
    let mut verified_probes = 0usize;
    for s in (0..sessions).step_by(probe_step) {
        let mut pos = 0u64;
        for _ in 0..rounds {
            let symbols: Vec<SymbolId> = (0..SYMBOLS_PER_BATCH as u64)
                .map(|k| symbol_at(s, pos + k))
                .collect();
            pos += SYMBOLS_PER_BATCH as u64;
            solo.ingest_batch(&[(ids[s].clone(), symbols.as_slice())])
                .expect("solo ingest");
        }
        let sharded_bytes = manager.snapshot(&ids[s]).expect("snapshot").to_bytes();
        let solo_bytes = solo.snapshot(&ids[s]).expect("solo snapshot").to_bytes();
        assert_eq!(
            sharded_bytes, solo_bytes,
            "{name}: session {s} diverged between the sharded/evicting run \
             and the plain replay"
        );
        verified_probes += 1;
    }

    latencies.sort_unstable();
    let touches = batches * BATCH_SESSIONS;
    let result = PhaseResult {
        name,
        sessions,
        rounds,
        batches,
        symbols,
        elapsed_secs: elapsed,
        sessions_per_sec: touches as f64 / elapsed,
        symbols_per_sec: symbols as f64 / elapsed,
        p50_batch_ns: percentile(&latencies, 0.50),
        p99_batch_ns: percentile(&latencies, 0.99),
        max_batch_ns: latencies.last().copied().unwrap_or(0),
        resident_after: stats.iter().map(|s| s.resident).sum(),
        parked_after: stats.iter().map(|s| s.parked).sum(),
        resident_bytes_after: stats.iter().map(|s| s.resident_bytes).sum(),
        memory_budget: per_shard_budget,
        shards: Some(shards),
        producers: Some(producers),
        verified_probes,
        counter_deltas: {
            let mut deltas = [0u64; 9];
            for (slot, (b, a)) in deltas
                .iter_mut()
                .zip(counters_before.iter().zip(counters_after))
            {
                *slot = a - b;
            }
            deltas
        },
        latency_histograms: hist_deltas(&hists_before, recorder),
    };
    eprintln!(
        "{name}: {} sessions x {} rounds on {} shards / {} producers | \
         {:.0} sessions/s, {:.2}M symbols/s | batch p50 {}us p99 {}us | \
         {} resident / {} parked | {} evictions, {} restores, queue peak {} | \
         {} probes bit-identical",
        sessions,
        rounds,
        shards,
        producers,
        result.sessions_per_sec,
        result.symbols_per_sec / 1e6,
        result.p50_batch_ns / 1_000,
        result.p99_batch_ns / 1_000,
        result.resident_after,
        result.parked_after,
        result.counter_deltas[2],
        result.counter_deltas[3],
        result.counter_deltas[8],
        verified_probes,
    );
    result
}

/// Renders one phase's histogram rows as a JSON object of quantile
/// summaries.
fn hist_json(rows: &[(&'static str, HistReport)]) -> String {
    if rows.is_empty() {
        return "{}".to_string();
    }
    let entries: Vec<String> = rows
        .iter()
        .map(|(name, r)| {
            format!(
                "        \"{name}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {} }}",
                r.count, r.sum, r.min, r.max, r.p50, r.p90, r.p99, r.p999
            )
        })
        .collect();
    format!("{{\n{}\n      }}", entries.join(",\n"))
}

fn phase_json(r: &PhaseResult) -> String {
    let deltas: Vec<String> = SESSION_COUNTERS
        .iter()
        .zip(r.counter_deltas)
        .map(|((_, name), d)| format!("        \"{name}\": {d}"))
        .collect();
    format!(
        "    \"{}\": {{\n      \"sessions\": {},\n      \"rounds\": {},\n      \
         \"batches\": {},\n      \"symbols\": {},\n      \
         \"batch_sessions\": {BATCH_SESSIONS},\n      \
         \"symbols_per_session_batch\": {SYMBOLS_PER_BATCH},\n      \
         \"elapsed_secs\": {:.6},\n      \"sessions_per_sec\": {:.1},\n      \
         \"symbols_per_sec\": {:.1},\n      \"p50_batch_ns\": {},\n      \
         \"p99_batch_ns\": {},\n      \"max_batch_ns\": {},\n      \
         \"resident_after\": {},\n      \"parked_after\": {},\n      \
         \"resident_bytes_after\": {},\n      \"memory_budget\": {},\n      \
         \"shards\": {},\n      \"producers\": {},\n      \
         \"verified_probes\": {},\n      \
         \"counter_deltas\": {{\n{}\n      }},\n      \
         \"latency_histograms\": {}\n    }}",
        r.name,
        r.sessions,
        r.rounds,
        r.batches,
        r.symbols,
        r.elapsed_secs,
        r.sessions_per_sec,
        r.symbols_per_sec,
        r.p50_batch_ns,
        r.p99_batch_ns,
        r.max_batch_ns,
        r.resident_after,
        r.parked_after,
        r.resident_bytes_after,
        r.memory_budget
            .map_or("null".to_string(), |b| b.to_string()),
        r.shards.map_or("null".to_string(), |s| s.to_string()),
        r.producers.map_or("null".to_string(), |p| p.to_string()),
        r.verified_probes,
        deltas.join(",\n"),
        hist_json(&r.latency_histograms),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());

    // Phase 1: everything resident; measures the pure batched path.
    let (small_sessions, small_rounds) = if smoke { (128, 2) } else { (1_000, 20) };
    let resident = run_phase("resident_1k", small_sessions, small_rounds, None, &recorder);

    // Phase 2: a byte budget far below the working set (each session
    // costs ~10 KiB resident), forcing park/restore churn every round
    // while still keeping >= 1k sessions resident.
    let (big_sessions, big_rounds, budget) = if smoke {
        (1_200, 2, Some(9 * 1024 * 1024))
    } else {
        (10_000, 5, Some(32 * 1024 * 1024))
    };
    let evicting = run_phase("evicting_10k", big_sessions, big_rounds, budget, &recorder);
    assert!(
        evicting.counter_deltas[2] > 0,
        "the eviction phase never evicted"
    );
    assert!(
        evicting.counter_deltas[3] > 0,
        "the eviction phase never restored"
    );

    // Phase 3: the same evicting workload, but pushed through the
    // sharded manager by concurrent producers. Shards default to the
    // core count so the phase reflects what this machine can actually
    // sustain; each shard gets a proportional slice of the byte budget
    // so churn pressure per shard matches phase 2.
    let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (con_sessions, con_rounds, con_producers) =
        if smoke { (1_200, 2, 4) } else { (10_000, 5, 8) };
    let per_shard_budget = budget.map(|b| (b / shards).max(4 * 1024 * 1024));
    let contended = run_contended_phase(
        "contended_multishard",
        con_sessions,
        con_rounds,
        shards,
        con_producers,
        per_shard_budget,
        &recorder,
    );
    assert!(
        contended.counter_deltas[2] > 0,
        "the contended phase never evicted"
    );
    assert!(
        contended.verified_probes > 0,
        "the contended phase verified no probes"
    );

    obs::uninstall();
    let json = format!(
        "{{\n  \"config\": {{ \"sigma\": {SIGMA}, \"window\": {WINDOW}, \
         \"smoke\": {smoke} }},\n  \"phases\": {{\n{},\n{},\n{}\n  }},\n  \
         \"eviction_transparent\": true,\n  \"answers_bit_identical\": true\n}}\n",
        phase_json(&resident),
        phase_json(&evicting),
        phase_json(&contended),
    );
    println!("{json}");
    if smoke {
        eprintln!("smoke run: skipping BENCH_sessions.json");
        return;
    }
    let out_path = std::env::var("BENCH_SESSIONS_OUT").unwrap_or_else(|_| {
        match option_env!("CARGO_MANIFEST_DIR") {
            Some(dir) => format!("{dir}/../../BENCH_sessions.json"),
            None => "BENCH_sessions.json".to_string(),
        }
    });
    std::fs::write(&out_path, &json).expect("write BENCH_sessions.json");
    eprintln!("wrote {out_path}");
}
