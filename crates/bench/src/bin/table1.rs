//! Table 1 — detected period values per periodicity threshold, on the
//! retail (Wal-Mart surrogate) and power (CIMEG surrogate) datasets.
//!
//! Expected shapes: fewer periods at higher thresholds; the retail daily
//! cycle (24) surfacing by the 70% row with its weekly multiple (168)
//! among the detected values; the power weekly cycle (7) by the 60% row
//! with multiples of 7; and at low thresholds a long tail of obscure
//! periods (the paper's 3961-hour daylight-saving artifact is emulated by
//! the surrogate's mid-series phase shift).
//!
//! Usage: `table1 [--retail-days 456] [--power-days 365] [--max-period-retail 4200]`.

use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_datagen::{PowerConfig, RetailConfig};
use periodica_series::SymbolSeries;

fn detect_periods(series: &SymbolSeries, threshold: f64, max_period: usize) -> Vec<usize> {
    PeriodicityDetector::new(
        DetectorConfig {
            threshold,
            max_period: Some(max_period),
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(series)
    .expect("detection succeeds")
    .detected_periods()
}

fn sample(periods: &[usize], highlights: &[usize]) -> String {
    let mut shown: Vec<usize> = highlights
        .iter()
        .copied()
        .filter(|p| periods.contains(p))
        .collect();
    for &p in periods.iter().take(4) {
        if !shown.contains(&p) {
            shown.push(p);
        }
    }
    shown.sort_unstable();
    if shown.is_empty() {
        "-".into()
    } else {
        shown
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let retail_days = args.get("retail-days", 456usize);
    let power_days = args.get("power-days", 365usize);
    let max_retail = args.get("max-period-retail", 4_200usize);

    let retail = RetailConfig {
        days: retail_days,
        ..Default::default()
    }
    .generate_series()
    .expect("retail surrogate generates");
    let power = PowerConfig {
        days: power_days,
        ..Default::default()
    }
    .generate_series()
    .expect("power surrogate generates");

    let mut writer = ExperimentWriter::new(
        "table1_period_values",
        &[
            "threshold_pct",
            "retail_num_periods",
            "retail_sample_periods",
            "power_num_periods",
            "power_sample_periods",
        ],
    );

    for pct in (10..=100).rev().step_by(10) {
        let threshold = pct as f64 / 100.0;
        let rp = detect_periods(&retail, threshold, max_retail.min(retail.len() / 2));
        let pp = detect_periods(&power, threshold, power.len() / 2);
        writer.row(&[
            pct.to_string(),
            rp.len().to_string(),
            sample(&rp, &[24, 168, 3961]),
            pp.len().to_string(),
            sample(&pp, &[7, 14, 21, 28]),
        ]);
    }
    writer.finish()?;
    Ok(())
}
