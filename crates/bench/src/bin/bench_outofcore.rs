//! Budget sweep for the out-of-core mining pipeline.
//!
//! Streams a planted-period series into the checksummed binary format
//! (PSRB), mines it with [`OutOfCoreMiner`] under a ladder of memory
//! budgets, and compares each run against the in-memory [`ObscureMiner`]
//! on the same series. Every report is asserted bit-identical (both the
//! periodicity list and the pattern list) before any number is written,
//! and every resident peak is asserted under its budget, so the JSON can
//! never describe a run that silently diverged or overflowed. Results
//! land in `BENCH_outofcore.json` at the repo root.
//!
//! Deliberately std-only at runtime (xorshift input, hand-rolled JSON),
//! matching the other bench binaries.

use std::time::Instant;

use periodica_core::{MinerConfig, ObscureMiner, OutOfCoreMiner};
use periodica_series::{Alphabet, FileSeriesReader, SeriesFileWriter, SymbolId, SymbolSeries};

// Sigma is sized so the spectrum prune bites: uniform background matches
// a fraction ~1/sigma^2 of pairs, which stays under threshold/p for every
// p <= max_period (0.6/96 > 1/256), so pass 2 allocates phase counters
// only for the planted survivors. A small alphabet here would let every
// large period survive pass 1 and the phase-counter memory — which the
// budget planner does not charge for — would dominate the peak.
const SIGMA: usize = 16;
const PERIOD: usize = 48;

struct Scale {
    n: usize,
    budgets: &'static [usize],
    iters: usize,
}

/// Full run: an 8 Mi-symbol series (8 MiB on disk) swept from a budget
/// 128x smaller than the file up to one that holds it whole.
const FULL: Scale = Scale {
    n: 1 << 23,
    budgets: &[64 << 10, 256 << 10, 1 << 20, 8 << 20],
    iters: 2,
};

/// `--smoke`: seconds, not minutes — CI checks the plumbing, not the curve.
const SMOKE: Scale = Scale {
    n: 1 << 17,
    budgets: &[64 << 10, 1 << 20],
    iters: 1,
};

/// Deterministic sigma-symbol series with a sparse planted period-48
/// rhythm: four phase positions carry fixed symbols (with ~5% noise),
/// everything else is uniform background (xorshift64; no external RNG
/// crate). Sparse on purpose — a fully periodic template would make all
/// 48 positions singleton-periodic and blow the Apriori candidate cap,
/// which is a pattern-phase stress test, not an I/O benchmark.
fn make_ids(n: usize) -> Vec<SymbolId> {
    let mut state = 0xD1B5_4A32_D192_ED03_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const PLANTED: [(usize, usize); 4] = [(3, 0), (17, 2), (29, 4), (41, 1)];
    (0..n)
        .map(|i| {
            let planted = PLANTED.iter().find(|&&(phase, _)| i % PERIOD == phase);
            let k = match planted {
                Some(&(_, sym)) if rng() % 20 != 0 => sym,
                _ => (rng() % SIGMA as u64) as usize,
            };
            SymbolId::from_index(k)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let n = scale.n;

    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let ids = make_ids(n);
    let series = SymbolSeries::from_ids(ids.clone(), alphabet.clone()).expect("series");

    // Stream the series to disk in writer-sized slices, the way a
    // producer larger than RAM would.
    let path = std::env::temp_dir().join(format!(
        "periodica-bench-outofcore-{}.series",
        std::process::id()
    ));
    let t = Instant::now();
    let mut writer = SeriesFileWriter::create(&path, &alphabet, n).expect("create");
    for slice in ids.chunks(1 << 16) {
        writer.push_slice(slice).expect("push");
    }
    writer.finish().expect("finish");
    let write_secs = t.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path).expect("metadata").len();
    eprintln!(
        "wrote {n} symbols ({file_bytes} B) in {write_secs:.3}s to {}",
        path.display()
    );

    // Two configurations per budget: detection-only, where the planner's
    // budget is a hard bound on the resident peak (asserted), and the full
    // pattern run, whose pair-index memory is output-sensitive (reported,
    // not asserted — the ROADMAP's "budget the pattern phase" follow-up).
    let full_config = MinerConfig {
        threshold: 0.6,
        max_period: Some(PERIOD * 2),
        ..MinerConfig::default()
    };
    let detect_config = MinerConfig {
        mine_patterns: false,
        ..full_config.clone()
    };

    // In-memory baseline: the whole series resident.
    let miner = ObscureMiner::from_config(full_config.clone());
    let mut t_mem = f64::INFINITY;
    let mut reference = None;
    for _ in 0..scale.iters {
        let t = Instant::now();
        let report = miner.mine(&series).expect("in-memory mine");
        t_mem = t_mem.min(t.elapsed().as_secs_f64());
        reference = Some(report);
    }
    let reference = reference.expect("at least one iteration");
    let resident_bytes = n * std::mem::size_of::<SymbolId>();
    eprintln!(
        "in-memory: {t_mem:.3}s ({resident_bytes} B resident, \
         {} periodicities, {} patterns)",
        reference.detection.periodicities.len(),
        reference.patterns.len()
    );

    // Times one out-of-core configuration at one budget, asserting the
    // trailer verified and the answers bit-identical on every run.
    let run_at = |config: &MinerConfig, budget: usize, patterns: bool| -> (f64, usize) {
        let miner = OutOfCoreMiner::new(config.clone(), budget).expect("out-of-core miner");
        let mut best = f64::INFINITY;
        let mut peak_bytes = 0usize;
        for _ in 0..scale.iters {
            let mut reader = FileSeriesReader::open(&path).expect("open");
            let t = Instant::now();
            let (report, peak) = miner.mine_with_peak(&mut reader).expect("out-of-core mine");
            best = best.min(t.elapsed().as_secs_f64());
            peak_bytes = peak;
            assert!(
                reader.checksum_verified(),
                "budget {budget}: full pass finished without verifying the trailer"
            );
            assert_eq!(
                report.detection.periodicities, reference.detection.periodicities,
                "budget {budget}: out-of-core periodicities diverge from in-memory"
            );
            if patterns {
                assert_eq!(
                    report.patterns, reference.patterns,
                    "budget {budget}: out-of-core patterns diverge from in-memory"
                );
            }
        }
        (best, peak_bytes)
    };

    let mut rows = Vec::new();
    for &budget in scale.budgets {
        let (detect_secs, detect_peak) = run_at(&detect_config, budget, false);
        assert!(
            detect_peak < budget,
            "budget {budget}: detection resident peak {detect_peak} B exceeds the budget"
        );
        let (full_secs, full_peak) = run_at(&full_config, budget, true);
        let frac = detect_peak as f64 / budget as f64;
        let slowdown = full_secs / t_mem;
        eprintln!(
            "budget {budget:>9} B: detect {detect_secs:.3}s peak {detect_peak} B \
             ({:.0}% of budget) | full {full_secs:.3}s ({slowdown:.2}x in-memory) \
             peak {full_peak} B",
            frac * 100.0
        );
        rows.push(format!(
            "    {{ \"budget_bytes\": {budget}, \
             \"detect_secs\": {detect_secs:.6}, \
             \"detect_peak_bytes\": {detect_peak}, \
             \"detect_peak_over_budget\": {frac:.4}, \
             \"full_secs\": {full_secs:.6}, \
             \"full_peak_bytes\": {full_peak}, \
             \"full_slowdown_vs_in_memory\": {slowdown:.3} }}"
        ));
    }
    std::fs::remove_file(&path).ok();

    let json = format!(
        "{{\n  \"config\": {{ \"sigma\": {SIGMA}, \"n\": {n}, \"period\": {PERIOD}, \
         \"file_bytes\": {file_bytes}, \"threshold\": 0.6, \"max_period\": {} }},\n  \
         \"in_memory\": {{ \"secs\": {t_mem:.6}, \"resident_bytes\": {resident_bytes} }},\n  \
         \"budgets\": [\n{}\n  ],\n  \
         \"bit_identical\": true\n}}\n",
        PERIOD * 2,
        rows.join(",\n")
    );
    let out_path = std::env::var("BENCH_OUTOFCORE_OUT").unwrap_or_else(|_| {
        match option_env!("CARGO_MANIFEST_DIR") {
            Some(dir) => format!("{dir}/../../BENCH_outofcore.json"),
            None => "BENCH_outofcore.json".to_string(),
        }
    });
    std::fs::write(&out_path, &json).expect("write BENCH_outofcore.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
