//! Figure 5 — time behaviour versus series length (log-log).
//!
//! The paper times its periodicity-detection phase against the periodic
//! trends algorithm on data slices of power-of-two sizes. The workload here
//! resembles the paper's real trace: a mostly irregular stream carrying a
//! planted periodic event (a retail-like signal at period 24), so the
//! period-candidate set stays realistic. (A *perfectly* periodic series
//! would make Definition 1's output itself quadratic — every phase of every
//! multiple qualifies — which measures output enumeration, not detection.)
//!
//! Expected shape: both curves quasi-linear on the log-log plot, ours
//! below, the gap growing with n (O(n log n) vs O(n log^2 n)).
//!
//! Usage: `fig5 [--min-pow 13] [--max-pow 19] [--full]`
//! (`--full` = up to 2^22 symbols).

use periodica_baselines::indyk::{PeriodicTrends, PeriodicTrendsConfig};
use periodica_baselines::shift_distance::symbol_values;
use periodica_bench::harness::{measure, Args, ExperimentWriter};
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_series::{Alphabet, SymbolId, SymbolSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random background over 10 symbols with one symbol beating at period 24
/// (reliability 0.9) — the event-log shape of the paper's Wal-Mart hours.
fn workload(n: usize) -> SymbolSeries {
    let alphabet = Alphabet::latin(10).expect("alphabet");
    let mut rng = StdRng::seed_from_u64(5);
    let mut data: Vec<SymbolId> = (0..n)
        .map(|_| SymbolId::from_index(rng.random_range(0..10)))
        .collect();
    for t in (7..n).step_by(24) {
        if rng.random::<f64>() < 0.9 {
            data[t] = SymbolId(0);
        }
    }
    SymbolSeries::from_ids(data, alphabet).expect("valid series")
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let full = args.flag("full");
    let min_pow = args.get("min-pow", 13u32);
    let max_pow = args.get("max-pow", if full { 22 } else { 19 });

    let mut writer = ExperimentWriter::new(
        "fig5_time_behaviour",
        &["n", "ours_detect_secs", "periodic_trends_secs", "speedup"],
    );

    for pow in min_pow..=max_pow {
        let n = 1usize << pow;
        let series = workload(n);

        // Ours: the periodicity-detection phase the paper times — one
        // convolution pass plus the per-(symbol, period) threshold test.
        let detector = PeriodicityDetector::new(
            DetectorConfig {
                threshold: 0.6,
                ..Default::default()
            },
            EngineKind::Spectrum.build(),
        );
        let (ours, ours_time) = measure(|| detector.candidate_periods(&series).expect("detect"));
        std::hint::black_box(ours.len());

        // Baseline: the periodic-trends sketch spectrum over the same
        // period range.
        let values = symbol_values(&series);
        let trends = PeriodicTrends::new(PeriodicTrendsConfig::default());
        let (spectrum, trends_time) = measure(|| trends.distance_spectrum(&values, n / 2));
        std::hint::black_box(spectrum.len());

        writer.row(&[
            n.to_string(),
            format!("{:.4}", ours_time.as_secs_f64()),
            format!("{:.4}", trends_time.as_secs_f64()),
            format!("{:.2}", trends_time.as_secs_f64() / ours_time.as_secs_f64()),
        ]);
    }
    writer.finish()?;
    Ok(())
}
