//! Table 3 — multi-symbol periodic patterns for the retail data at period
//! 24, periodicity threshold 35%, with supports.
//!
//! Expected shape: patterns resembling the paper's
//! `aaaa********bbbbc***aa**` family — runs of the overnight `a` level at
//! the closed hours, mid levels through the day — with supports decreasing
//! as cardinality grows.
//!
//! Usage: `table3 [--retail-days 456] [--threshold 0.35] [--period 24]
//! [--limit 20]`.

use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_core::{ObscureMiner, PatternMode};
use periodica_datagen::RetailConfig;

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let retail_days = args.get("retail-days", 456usize);
    let threshold = args.get("threshold", 0.35f64);
    let period = args.get("period", 24usize);
    let limit = args.get("limit", 20usize);

    let series = RetailConfig {
        days: retail_days,
        ..Default::default()
    }
    .generate_series()
    .expect("retail surrogate generates");
    let alphabet = series.alphabet().clone();

    let report = ObscureMiner::builder()
        .threshold(threshold)
        .min_period(period)
        .max_period(period)
        .pattern_mode(PatternMode::Closed)
        .build()
        .mine(&series)
        .expect("mining succeeds");

    let mut writer = ExperimentWriter::new(
        "table3_periodic_patterns",
        &["pattern", "cardinality", "support_pct"],
    );

    // Most interesting first: high cardinality, then high support — the
    // paper's table reads the same way (long patterns with their supports).
    let mut patterns = report.patterns_at(period);
    patterns.sort_by(|a, b| {
        b.pattern.cardinality().cmp(&a.pattern.cardinality()).then(
            b.support
                .support
                .partial_cmp(&a.support.support)
                .expect("finite"),
        )
    });
    for m in patterns.into_iter().take(limit) {
        writer.row(&[
            m.pattern.render(&alphabet),
            m.pattern.cardinality().to_string(),
            format!("{:.2}", m.support.support * 100.0),
        ]);
    }
    writer.finish()?;
    Ok(())
}
