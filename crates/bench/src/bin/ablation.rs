//! Ablations XA1/XA2 as one runnable table (Criterion holds the rigorous
//! versions; this binary gives the quick CSV/stdout view EXPERIMENTS.md
//! quotes).
//!
//! * engines: naive vs bitset vs spectrum wall time at growing sizes
//!   (identical outputs are asserted, not assumed);
//! * pruning: detector time and scan counts with the spectrum prune
//!   on/off at several thresholds;
//! * pattern assembly: closed (LCM) vs enumerate-all (Apriori).
//!
//! Usage: `ablation [--max-pow 14]`.

use periodica_bench::harness::{measure, Args, ExperimentWriter};
use periodica_bench::workloads::noisy;
use periodica_core::{
    mine_patterns, DetectorConfig, EngineKind, PatternMinerConfig, PatternMode, PeriodicityDetector,
};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;
use periodica_series::SymbolId;

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let max_pow = args.get("max-pow", 14u32);

    // --- XA1: engines ---
    let mut writer = ExperimentWriter::new(
        "ablation_engines",
        &["n", "engine", "seconds", "total_matches_at_p25"],
    );
    for pow in 10..=max_pow {
        let n = 1usize << pow;
        let series = noisy(
            SymbolDistribution::Uniform,
            25,
            n,
            &[NoiseKind::Replacement],
            0.2,
            7,
        );
        let mut reference: Option<u64> = None;
        for kind in EngineKind::all() {
            if kind == EngineKind::Naive && n > 1 << 13 {
                continue; // quadratic; the point is made by 2^13
            }
            let engine = kind.build();
            let (spectrum, elapsed) =
                measure(|| engine.match_spectrum(&series, n / 2).expect("spectrum"));
            let probe: u64 = (0..series.sigma())
                .map(|k| spectrum.matches(SymbolId::from_index(k), 25))
                .sum();
            match reference {
                None => reference = Some(probe),
                Some(r) => assert_eq!(r, probe, "engines disagree at n={n}"),
            }
            writer.row(&[
                n.to_string(),
                engine.name().into(),
                format!("{:.4}", elapsed.as_secs_f64()),
                probe.to_string(),
            ]);
        }
    }
    writer.finish()?;

    // --- XA2: pruning ---
    // The count-level prune is sound but phase-blind: a dense symbol's
    // total matches can exceed the per-phase requirement at most periods,
    // so whole periods are rarely skipped on symbol-dense data. Its real
    // saving is *within* each scan — only flagged symbols are counted
    // (phase_counts_for) — which the timing column shows. Output equality
    // is asserted either way.
    let mut writer = ExperimentWriter::new(
        "ablation_pruning",
        &[
            "threshold",
            "prune",
            "seconds",
            "scanned_periods",
            "periodicities",
        ],
    );
    let n = 1usize << max_pow;
    let series = periodica_datagen::composite::CompositeConfig {
        length: n,
        alphabet_size: 10,
        rhythms: vec![periodica_datagen::composite::Rhythm {
            symbol: SymbolId(0),
            period: 24,
            phase: 3,
            reliability: 0.9,
            active: None,
        }],
        seed: 9,
    }
    .generate()
    .expect("composite workload");
    for threshold in [0.3, 0.6, 0.9] {
        let mut reference: Option<usize> = None;
        for prune in [true, false] {
            let detector = PeriodicityDetector::new(
                DetectorConfig {
                    threshold,
                    prune,
                    ..Default::default()
                },
                EngineKind::Spectrum.build(),
            );
            let (result, elapsed) = measure(|| detector.detect(&series).expect("detect"));
            match reference {
                None => reference = Some(result.periodicities.len()),
                Some(r) => assert_eq!(r, result.periodicities.len(), "prune changed output"),
            }
            writer.row(&[
                format!("{threshold}"),
                prune.to_string(),
                format!("{:.4}", elapsed.as_secs_f64()),
                result.scanned_periods.to_string(),
                result.periodicities.len().to_string(),
            ]);
        }
    }
    writer.finish()?;

    // --- pattern assembly: closed vs enumerate ---
    let mut writer = ExperimentWriter::new("ablation_patterns", &["mode", "seconds", "patterns"]);
    let series = noisy(
        SymbolDistribution::Uniform,
        24,
        1 << 14,
        &[NoiseKind::Replacement],
        0.25,
        13,
    );
    let detection = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.4,
            max_period: Some(48),
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&series)
    .expect("detect");
    for (label, mode) in [
        ("closed_lcm", PatternMode::Closed),
        ("enumerate_apriori", PatternMode::EnumerateAll),
    ] {
        let config = PatternMinerConfig {
            min_support: 0.4,
            mode,
            ..Default::default()
        };
        let (patterns, elapsed) =
            measure(|| mine_patterns(&series, &detection, &config).expect("mine"));
        writer.row(&[
            label.into(),
            format!("{:.4}", elapsed.as_secs_f64()),
            patterns.len().to_string(),
        ]);
    }
    writer.finish()?;
    Ok(())
}
