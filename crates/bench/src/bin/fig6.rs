//! Figure 6 — resilience to noise.
//!
//! Confidence of the embedded period as the noise ratio sweeps 0..50% for
//! the five mixtures the paper plots (R, I, D, R+I+D, I+D), on panels
//! (Uniform, P=25) and (Normal, P=32). Expected shapes: replacement noise
//! degrades gracefully (still detectable at a 40% threshold under 50%
//! noise); insertion/deletion (which destroy alignment) fall off sharply.
//!
//! Usage: `fig6 [--length 65536] [--runs 5] [--step 0.05] [--full]`.

use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_bench::workloads::noisy;
use periodica_core::period_confidence;
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::{figure6_mixtures, NoiseSpec};

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let full = args.flag("full");
    let length = args.get("length", if full { 1 << 20 } else { 1 << 16 });
    let runs = args.get("runs", if full { 100 } else { 5 });
    let step = args.get("step", 0.05f64);

    let mut writer = ExperimentWriter::new(
        "fig6_noise_resilience",
        &["panel", "mixture", "noise_ratio", "confidence"],
    );

    let panels = [
        ("a_uniform_P25", SymbolDistribution::Uniform, 25usize),
        (
            "b_normal_P32",
            SymbolDistribution::Normal { std_dev: 1.5 },
            32usize,
        ),
    ];

    for (panel, dist, period) in panels {
        for mix in figure6_mixtures() {
            let label = NoiseSpec::new(mix.clone(), 0.0).expect("valid").label();
            let mut ratio = 0.0;
            while ratio <= 0.5 + 1e-9 {
                let mut total = 0.0;
                for run in 0..runs {
                    let seed = run as u64 * 31 + (ratio * 1000.0) as u64;
                    let series = noisy(dist, period, length, &mix, ratio, seed);
                    total += period_confidence(&series, period);
                }
                writer.row(&[
                    panel.into(),
                    label.clone(),
                    format!("{ratio:.2}"),
                    format!("{:.4}", total / runs as f64),
                ]);
                ratio += step;
            }
        }
    }
    writer.finish()?;
    Ok(())
}
