//! Baseline contrast (ablation XA3 in DESIGN.md): what each related-work
//! algorithm sees on the same workloads.
//!
//! 1. The paper's Sect. 1.1 counterexample: a symbol at positions
//!    0, 4, 5, 7, 10 has true period 5, which the Ma-Hellerstein
//!    adjacent-inter-arrival method *cannot* surface, while our detector
//!    does.
//! 2. A planted-period workload across all four detectors: ours,
//!    periodic trends (Indyk), Ma-Hellerstein, Berberidis — hit/miss plus
//!    the number of passes each needs.
//!
//! Usage: `baselines [--length 50000] [--period 25]`.

use periodica_baselines::berberidis::{self, BerberidisConfig};
use periodica_baselines::indyk::{PeriodicTrends, PeriodicTrendsConfig};
use periodica_baselines::ma_hellerstein::{self, MaHellersteinConfig};
use periodica_bench::harness::{Args, ExperimentWriter};
use periodica_bench::workloads::{inerrant, noisy};
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;
use periodica_series::{Alphabet, SymbolSeries};

fn miss_example() -> (SymbolSeries, usize) {
    // Scale the paper's 0, 4, 5, 7, 10 example (Sect. 1.1): tile a 10-slot
    // motif with 'a' at offsets {0, 4, 5, 7}, so 'a' occurs at
    // 0, 4, 5, 7, 10, 14, 15, 17, 20, ... — the true period is 5 (every
    // multiple of 5 is an occurrence, confidence 1 at phase 0), yet the
    // *adjacent* inter-arrival distances are forever {4, 1, 2, 3}.
    let alphabet = Alphabet::latin(2).expect("ok");
    let motif: Vec<char> = (0..10)
        .map(|i| {
            if [0usize, 4, 5, 7].contains(&i) {
                'a'
            } else {
                'b'
            }
        })
        .collect();
    let text: String = std::iter::repeat_with(|| motif.iter())
        .take(200)
        .flatten()
        .collect();
    (SymbolSeries::parse(&text, &alphabet).expect("ok"), 5)
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let length = args.get("length", 50_000usize);
    let period = args.get("period", 25usize);

    // Part 1: the adjacency blind spot.
    let mut writer = ExperimentWriter::new(
        "baselines_ma_hellerstein_miss",
        &["detector", "sees_period_5", "evidence"],
    );
    let (series, true_period) = miss_example();
    let a = series.alphabet().lookup("a").expect("ok");
    let distances = ma_hellerstein::adjacent_distances(&series, a);
    let mut uniq = distances.clone();
    uniq.sort_unstable();
    uniq.dedup();
    writer.row(&[
        "ma_hellerstein".into(),
        uniq.contains(&true_period).to_string(),
        format!("adjacent distances {uniq:?}"),
    ]);
    let ours = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.9,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&series)
    .expect("ok");
    let sees5 = ours
        .periodicities
        .iter()
        .any(|sp| sp.period == 5 && sp.symbol == a);
    writer.row(&[
        "ours".into(),
        sees5.to_string(),
        format!(
            "detected periods {:?}",
            &ours.detected_periods()[..4.min(ours.detected_periods().len())]
        ),
    ]);
    writer.finish()?;

    // Part 2: four detectors on a noisy planted-period workload.
    let mut writer = ExperimentWriter::new(
        "baselines_detection_matrix",
        &["detector", "passes", "finds_planted_period", "detail"],
    );
    let clean = inerrant(SymbolDistribution::Uniform, period, length, 5);
    let series = noisy(
        SymbolDistribution::Uniform,
        period,
        length,
        &[NoiseKind::Replacement],
        0.2,
        5,
    );
    drop(clean);

    let ours = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.5,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&series)
    .expect("ok");
    writer.row(&[
        "ours(one-pass)".into(),
        "1".into(),
        ours.detected_periods().contains(&period).to_string(),
        format!(
            "best confidence {:.3}",
            ours.best_confidence(period).unwrap_or(0.0)
        ),
    ]);

    let trends = PeriodicTrends::new(PeriodicTrendsConfig::default());
    let report = trends.analyze(&series, series.len() / 2);
    writer.row(&[
        "periodic_trends".into(),
        "multi".into(),
        (report.confidence_of(period) >= 0.95).to_string(),
        format!(
            "rank confidence {:.3}; top-5 raw candidates {:?} (long-period bias)",
            report.confidence_of(period),
            report.top(5)
        ),
    ]);

    let pg = periodica_baselines::periodogram::find_periods(
        &series,
        &periodica_baselines::periodogram::PeriodogramConfig::default(),
    );
    writer.row(&[
        "periodogram_acf".into(),
        "2".into(),
        pg.iter()
            .take(6)
            .any(|h| h.period == period || period.is_multiple_of(h.period))
            .to_string(),
        format!(
            "top hints {:?}",
            pg.iter().take(4).map(|h| h.period).collect::<Vec<_>>()
        ),
    ]);

    let mh = ma_hellerstein::find_periods(&series, &MaHellersteinConfig::default());
    writer.row(&[
        "ma_hellerstein".into(),
        "2".into(),
        mh.iter().any(|c| c.period == period).to_string(),
        format!("{} candidates", mh.len()),
    ]);

    // Bound the filter to a sane period range; its normalization
    // over-triggers at periods comparable to n (see its module docs).
    let bb = berberidis::candidate_periods(
        &series,
        &BerberidisConfig {
            max_period: Some(500),
            ..Default::default()
        },
    )
    .expect("ok");
    let confirmed = berberidis::confirm_candidates(&series, &bb, 0.5);
    writer.row(&[
        "berberidis".into(),
        berberidis::PASSES.to_string(),
        confirmed
            .iter()
            .any(|(c, _, _)| c.period == period)
            .to_string(),
        format!("{} filtered, {} confirmed", bb.len(), confirmed.len()),
    ]);
    writer.finish()?;
    Ok(())
}
