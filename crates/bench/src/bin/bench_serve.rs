//! Serving-edge benchmark: concurrent clients against an in-process
//! `periodica serve` instance over loopback TCP.
//!
//! For each worker-pool size in the sweep the harness binds a fresh
//! [`Server`] (shards = cores), pre-ingests a session population, then
//! drives it with N client threads. Each client owns one keep-alive
//! [`periodica_client::Client`] connection and issues a deterministic
//! mixed workload (ingest batches, per-session queries, stats probes),
//! recording every request's latency client-side into a streaming
//! histogram. Requests/s is wall-clock over the total request count.
//!
//! After every phase the harness queries each session once and keeps
//! the raw response strings; phases must agree byte-for-byte — the
//! worker pool must change throughput, never answers. The sweep's
//! scaling ratio (best phase over workers=1) and per-phase latency
//! quantiles land in `BENCH_serve.json` at the repo root.
//!
//! Flags: `--smoke` shrinks the workload for CI and skips the file
//! write; `--assert-scaling <x>` exits nonzero unless the sweep's
//! scaling ratio reaches `x` (used by the multi-core CI leg, where the
//! pool has real cores to spread over).

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use periodica_cli::serve::{ServeConfig, Server};
use periodica_client::{Client, ClientBuilder, IngestRecord, Protocol};
use periodica_core::SessionManager;
use periodica_obs::Histogram;
use periodica_series::Alphabet;

const SIGMA: usize = 8;
const WINDOW: usize = 64;

/// Each session streams a clean periodic signal whose period depends on
/// its index, so every phase's answers are predictable and comparable.
fn session_period(session: usize) -> usize {
    [4, 6, 8, 12][session % 4]
}

fn session_symbols(session: usize, offset: usize, len: usize) -> String {
    let period = session_period(session);
    (0..len)
        .map(|i| (b'a' + (((offset + i) % period) % SIGMA) as u8) as char)
        .collect()
}

fn client_for(addr: &str, protocol: Protocol) -> Client {
    ClientBuilder::new(addr).protocol(protocol).build()
}

struct PhaseResult {
    workers: usize,
    clients: usize,
    requests: usize,
    elapsed_secs: f64,
    requests_per_sec: f64,
    latency: Histogram,
    answers: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    workers: usize,
    shards: usize,
    clients: usize,
    sessions: usize,
    requests_per_client: usize,
) -> PhaseResult {
    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let config = ServeConfig::default()
        .shards(shards)
        .workers(workers)
        .conn_queue(clients.max(1));
    let builder = SessionManager::builder(alphabet.clone()).window(WINDOW);
    let server = Server::bind(config, builder, alphabet).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = Arc::new(server);
    let serve_handle = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve().expect("serve"))
    };

    // Pre-ingest the session population on one connection.
    let mut seed = client_for(&addr, Protocol::Wire);
    for chunk in (0..sessions).collect::<Vec<_>>().chunks(64) {
        let records: Vec<IngestRecord> = chunk
            .iter()
            .map(|&s| IngestRecord::new(format!("s{s}"), session_symbols(s, 0, WINDOW)))
            .collect();
        seed.ingest(&records).expect("seed ingest");
    }
    // Release the seed's keep-alive connection so it does not pin a
    // pool worker while sitting idle through the load phase.
    seed.disconnect();

    let started = Instant::now();
    let latency = Histogram::new();
    thread::scope(|scope| {
        for c in 0..clients {
            let addr = &addr;
            let latency = &latency;
            scope.spawn(move || {
                // Alternate protocols across client threads so both
                // framings share the pool.
                let protocol = if c % 2 == 0 {
                    Protocol::Wire
                } else {
                    Protocol::Http
                };
                let mut client = client_for(addr, protocol);
                // Each client owns a disjoint session range, so every
                // session's symbol stream arrives in one deterministic
                // order no matter how the pool schedules connections —
                // that is what makes the cross-phase answer comparison
                // exact.
                let span = (sessions / clients).max(1);
                for r in 0..requests_per_client {
                    let pick = (c * 7 + r) % 10;
                    let session = (c * span + (r % span)) % sessions;
                    let t = Instant::now();
                    if pick < 7 {
                        let record = IngestRecord::new(
                            format!("s{session}"),
                            session_symbols(session, WINDOW + r, 16),
                        );
                        client
                            .ingest(std::slice::from_ref(&record))
                            .expect("ingest");
                    } else if pick < 9 {
                        client.query(&format!("s{session}")).expect("query");
                    } else {
                        client.stats().expect("stats");
                    }
                    latency.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    // Recycle the connection every few requests: a
                    // worker owns a connection for its whole life, so
                    // bounded bursts keep pools smaller than the client
                    // count rotating fairly instead of starving.
                    if r % 10 == 9 {
                        client.disconnect();
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let requests = clients * requests_per_client;

    // The answer set: one query per session, captured as raw JSON. The
    // load above is deterministic (same per-session symbol stream in
    // every phase), so these strings must match across pool sizes.
    let answers: Vec<String> = (0..sessions)
        .map(|s| {
            let response = seed.query(&format!("s{s}")).expect("answer query");
            format!("{response:?}")
        })
        .collect();
    seed.shutdown().expect("shutdown");
    let summary = serve_handle.join().expect("server thread");
    assert!(summary.shutdown, "server should stop via SHUTDOWN");

    PhaseResult {
        workers,
        clients,
        requests,
        elapsed_secs: elapsed,
        requests_per_sec: requests as f64 / elapsed.max(1e-9),
        latency,
        answers,
    }
}

fn phase_json(p: &PhaseResult) -> String {
    format!(
        "    {{ \"workers\": {}, \"clients\": {}, \"requests\": {}, \
         \"elapsed_secs\": {:.4}, \"requests_per_sec\": {:.1}, \
         \"latency_ns\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {} }} }}",
        p.workers,
        p.clients,
        p.requests,
        p.elapsed_secs,
        p.requests_per_sec,
        p.latency.quantile(0.50),
        p.latency.quantile(0.90),
        p.latency.quantile(0.99),
        p.latency.max(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let assert_scaling: Option<f64> = args.iter().position(|a| a == "--assert-scaling").map(|i| {
        args.get(i + 1)
            .expect("--assert-scaling needs a ratio")
            .parse()
            .expect("--assert-scaling ratio must be a number")
    });
    let workers_override: Option<Vec<usize>> =
        args.iter().position(|a| a == "--workers").map(|i| {
            args.get(i + 1)
                .expect("--workers needs a comma-separated list")
                .split(',')
                .map(|w| w.parse().expect("worker counts must be integers"))
                .collect()
        });

    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let (clients, sessions, requests_per_client) = if smoke { (4, 32, 50) } else { (8, 256, 400) };
    let sweep = workers_override.unwrap_or_else(|| {
        let mut sweep = vec![1];
        if cores >= 2 {
            sweep.push(cores.min(8));
        }
        sweep
    });

    eprintln!(
        "bench_serve: cores={cores} clients={clients} sessions={sessions} \
         requests/client={requests_per_client} worker sweep {sweep:?}"
    );
    let mut phases = Vec::new();
    for &workers in &sweep {
        let phase = run_phase(workers, cores, clients, sessions, requests_per_client);
        eprintln!(
            "  workers={:<3} {:>9.1} req/s  p50 {:>9} ns  p99 {:>9} ns",
            phase.workers,
            phase.requests_per_sec,
            phase.latency.quantile(0.50),
            phase.latency.quantile(0.99),
        );
        phases.push(phase);
    }

    // Answers must be bit-identical across pool sizes.
    for phase in &phases[1..] {
        assert_eq!(
            phase.answers, phases[0].answers,
            "workers={} changed query answers vs workers={}",
            phase.workers, phases[0].workers
        );
    }
    eprintln!(
        "  answers: {} sessions bit-identical across all {} phases",
        phases[0].answers.len(),
        phases.len()
    );

    let baseline = phases
        .iter()
        .find(|p| p.workers == 1)
        .map(|p| p.requests_per_sec);
    let best = phases
        .iter()
        .map(|p| p.requests_per_sec)
        .fold(0.0f64, f64::max);
    let scaling = baseline.map(|b| best / b.max(1e-9));
    if let Some(s) = scaling {
        eprintln!("  scaling (best / workers=1): {s:.2}x");
    }
    if let Some(want) = assert_scaling {
        let got = scaling.expect("--assert-scaling requires workers=1 in the sweep");
        assert!(
            got >= want,
            "scaling {got:.2}x below the required {want:.2}x"
        );
        eprintln!("  scaling assertion passed (>= {want:.2}x)");
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{ \"cores\": {cores}, \
         \"clients\": {clients}, \"sessions\": {sessions}, \
         \"requests_per_client\": {requests_per_client}, \"smoke\": {smoke} }},\n  \
         \"phases\": [\n{}\n  ],\n  \"answers_identical\": true,\n  \
         \"scaling_vs_one_worker\": {}\n}}\n",
        phases
            .iter()
            .map(phase_json)
            .collect::<Vec<_>>()
            .join(",\n"),
        scaling.map_or("null".to_string(), |s| format!("{s:.3}")),
    );
    if smoke {
        eprintln!("smoke run: skipping BENCH_serve.json");
        print!("{json}");
        return;
    }
    let out_path = match std::env::var("CARGO_MANIFEST_DIR").ok() {
        Some(dir) => format!("{dir}/../../BENCH_serve.json"),
        None => "BENCH_serve.json".to_string(),
    };
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
