//! Pattern-mining shoot-out for the bit-parallel verification index.
//!
//! Times the pattern phase (detection excluded — PR 1's territory) on
//! three workloads against a faithful replication of the seed's scalar
//! miner, which re-scanned the whole series once per Apriori candidate:
//!
//! * **dense** — sigma = 10, n = 2^17, a planted period-24 pattern at
//!   every phase under 20% replacement noise, mined at a support
//!   threshold that keeps three Apriori levels fully frequent (~13k
//!   candidates, the scalar path's worst case);
//! * **sparse** — same length, a 5-position period-50 pattern in noise;
//! * **paper** — the paper's Sect. 2 series `abcabbabcb` tiled to length,
//!   whose harmonic periods exercise the per-period thread fan-out.
//!
//! Every comparison asserts bit-identical output (patterns, counts,
//! denominators, order) between the scalar baseline, the bit-parallel
//! serial path, and the multi-threaded path before any ratio is reported.
//! Results land in `BENCH_mining.json` at the repo root.
//!
//! Deliberately std-only (hand-rolled xorshift input, hand-rolled JSON) so
//! the binary runs in stripped-down environments with no extra crates.
//! `--smoke` shrinks every workload for CI (seconds, no file written);
//! `--n <len>` overrides the series length.

use std::sync::Arc;
use std::time::Instant;

use periodica_core::{
    mine_patterns, DetectionResult, DetectorConfig, EngineKind, MinedPattern, Pattern,
    PatternMinerConfig, PatternMode, PeriodicityDetector, SupportEstimate,
};
use periodica_obs::{self as obs, Counter, MetricsRecorder};
use periodica_series::{pair_denominator, Alphabet, SymbolId, SymbolSeries};

const SIGMA: usize = 10;
const EPS: f64 = 1e-12;

/// The seed's scalar support scan, frozen verbatim from the pre-rewrite
/// sources: collects the fixed positions into a fresh `Vec` per call and
/// re-derives pair eligibility phase by phase. Kept here so the baseline
/// measures the seed as shipped, not the seed enumerator running on
/// today's faster scan.
fn seed_pattern_support(series: &SymbolSeries, pattern: &Pattern) -> SupportEstimate {
    let n = series.len();
    let p = pattern.period();
    let fixed: Vec<(usize, SymbolId)> = pattern.fixed().collect();
    if fixed.is_empty() || n == 0 {
        return SupportEstimate {
            count: 0,
            denominator: 0,
            support: 0.0,
        };
    }
    let denominator = if fixed.len() == 1 {
        pair_denominator(n, p, fixed[0].0)
    } else {
        pair_denominator(n, p, 0)
    };
    if denominator == 0 {
        return SupportEstimate {
            count: 0,
            denominator: 0,
            support: 0.0,
        };
    }
    let data = series.symbols();
    let mut count = 0u32;
    let mut i = 0usize;
    loop {
        let base = i * p;
        let next = base + p;
        let mut eligible = true;
        let mut all_match = true;
        for &(l, s) in &fixed {
            let a = base + l;
            let b = next + l;
            if b >= n {
                eligible = false;
                break;
            }
            if data[a] != s || data[b] != s {
                all_match = false;
            }
        }
        if !eligible {
            break;
        }
        if all_match {
            count += 1;
        }
        i += 1;
    }
    SupportEstimate {
        count,
        denominator: denominator as u32,
        support: count as f64 / denominator as f64,
    }
}

/// The seed's serial Apriori enumerator, replicated verbatim: a HashSet of
/// frequent sets for the prune step and one full `seed_pattern_support`
/// series rescan per surviving candidate.
fn seed_enumerate_all(
    series: &SymbolSeries,
    detection: &DetectionResult,
    min_support: f64,
) -> Vec<MinedPattern> {
    use std::collections::HashSet;
    type Item = (usize, SymbolId);
    let mut out = Vec::new();
    for period in detection.detected_periods() {
        let mut seeds: Vec<Vec<Item>> = Vec::new();
        for sp in detection.at_period(period) {
            if sp.confidence + EPS >= min_support {
                let pattern = Pattern::single(period, sp.phase, sp.symbol).expect("pattern");
                out.push(MinedPattern {
                    pattern,
                    support: SupportEstimate {
                        count: sp.f2,
                        denominator: sp.denominator,
                        support: sp.confidence,
                    },
                });
                seeds.push(vec![(sp.phase, sp.symbol)]);
            }
        }
        seeds.sort();
        seeds.dedup();
        let mut frequent_prev = seeds;
        let mut frequent_set: HashSet<Vec<Item>> = frequent_prev.iter().cloned().collect();
        let mut level = 1usize;
        while !frequent_prev.is_empty() && level < period {
            level += 1;
            let mut candidates: Vec<Vec<Item>> = Vec::new();
            for i in 0..frequent_prev.len() {
                for j in i + 1..frequent_prev.len() {
                    let (a, b) = (&frequent_prev[i], &frequent_prev[j]);
                    if a[..a.len() - 1] != b[..b.len() - 1] {
                        break;
                    }
                    let (la, lb) = (a[a.len() - 1], b[b.len() - 1]);
                    if la.0 == lb.0 {
                        continue;
                    }
                    let mut cand = a.clone();
                    cand.push(lb.max(la));
                    cand.sort();
                    let all_subsets_frequent = (0..cand.len()).all(|drop| {
                        let mut sub = cand.clone();
                        sub.remove(drop);
                        frequent_set.contains(&sub)
                    });
                    if all_subsets_frequent {
                        candidates.push(cand);
                    }
                }
            }
            candidates.sort();
            candidates.dedup();
            let mut frequent_now = Vec::new();
            for cand in candidates {
                let pattern = Pattern::new(period, &cand).expect("pattern");
                let support = seed_pattern_support(series, &pattern);
                if support.denominator > 0 && support.support + EPS >= min_support {
                    out.push(MinedPattern { pattern, support });
                    frequent_set.insert(cand.clone());
                    frequent_now.push(cand);
                }
            }
            frequent_prev = frequent_now;
        }
    }
    out
}

/// xorshift64 step.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Planted periodic series: `pattern[i % period]` at every position, each
/// position independently replaced by a uniform random symbol with
/// probability `noise_pct / 100`.
fn planted_series(
    n: usize,
    period: usize,
    planted: &[Option<usize>],
    noise_pct: u64,
) -> SymbolSeries {
    let alphabet = Alphabet::latin(SIGMA).expect("alphabet");
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let ids: Vec<SymbolId> = (0..n)
        .map(|i| {
            let base = planted[i % period];
            let id = match base {
                Some(k) if xorshift(&mut state) % 100 >= noise_pct => k,
                _ => (xorshift(&mut state) % SIGMA as u64) as usize,
            };
            SymbolId::from_index(id)
        })
        .collect();
    SymbolSeries::from_ids(ids, alphabet).expect("series")
}

fn detect(series: &SymbolSeries, threshold: f64, max_period: usize) -> DetectionResult {
    PeriodicityDetector::new(
        DetectorConfig {
            threshold,
            max_period: Some(max_period),
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(series)
    .expect("detection")
}

/// Best-of-`iters` wall time plus the (identical) result.
fn time_mining<F: FnMut() -> Vec<MinedPattern>>(
    iters: usize,
    mut f: F,
) -> (f64, Vec<MinedPattern>) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t = Instant::now();
        let result = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(result);
    }
    (best, out.expect("at least one iteration"))
}

/// Bit-identical comparison: same patterns, counts, denominators, support
/// bits, same order.
fn assert_identical(
    scenario: &str,
    reference: &[MinedPattern],
    others: &[(&str, &[MinedPattern])],
) {
    for (name, mined) in others {
        assert_eq!(
            reference.len(),
            mined.len(),
            "{scenario}: {name} pattern count diverges"
        );
        for (i, (a, b)) in reference.iter().zip(mined.iter()).enumerate() {
            assert_eq!(a.pattern, b.pattern, "{scenario}: {name} pattern {i}");
            assert_eq!(
                a.support.count, b.support.count,
                "{scenario}: {name} count at {i}"
            );
            assert_eq!(
                a.support.denominator, b.support.denominator,
                "{scenario}: {name} denominator at {i}"
            );
            assert_eq!(
                a.support.support.to_bits(),
                b.support.support.to_bits(),
                "{scenario}: {name} support bits at {i}"
            );
        }
    }
}

/// The mining-phase counters embedded per workload: Apriori candidate flow,
/// closed-miner extension checks, and verification-index traffic. The seed
/// scalar replica above predates the telemetry layer, so the deltas cover
/// only today's pipeline (all timed iterations of all four configurations).
const MINING_COUNTERS: [(Counter, &str); 7] = [
    (Counter::CandidatesGenerated, "mining.candidates.generated"),
    (
        Counter::CandidatesPrunedApriori,
        "mining.candidates.pruned_apriori",
    ),
    (
        Counter::CandidatesPrunedInfrequent,
        "mining.candidates.pruned_infrequent",
    ),
    (Counter::PatternsFrequent, "mining.patterns.frequent"),
    (
        Counter::ClosedExtensionsChecked,
        "mining.closed.extensions_checked",
    ),
    (Counter::PairIndexRowsBuilt, "pairbits.rows_built"),
    (Counter::PopcountWords, "pairbits.popcount_words"),
];

fn snapshot(rec: &MetricsRecorder) -> [u64; 7] {
    MINING_COUNTERS.map(|(c, _)| rec.counter(c))
}

struct WorkloadResult {
    name: &'static str,
    n: usize,
    detected_periods: usize,
    patterns: usize,
    scalar_secs: f64,
    indexed_serial_secs: f64,
    indexed_parallel_secs: f64,
    closed_serial_secs: f64,
    closed_parallel_secs: f64,
    enumerate_speedup: f64,
    counter_deltas: [u64; 7],
}

fn run_workload(
    name: &'static str,
    series: &SymbolSeries,
    threshold: f64,
    min_support: f64,
    max_period: usize,
    iters: usize,
    recorder: &MetricsRecorder,
) -> WorkloadResult {
    let detection = detect(series, threshold, max_period);
    let periods = detection.detected_periods();
    eprintln!("{name}: n={} detected periods {:?}", series.len(), periods);

    let config = |mode: PatternMode, threads: usize| PatternMinerConfig {
        min_support,
        mode,
        threads: Some(threads),
        ..Default::default()
    };

    let counters_before = snapshot(recorder);
    // EnumerateAll: seed scalar baseline vs indexed serial vs threaded.
    let (t_scalar, scalar) = time_mining(iters, || {
        seed_enumerate_all(series, &detection, min_support)
    });
    let (t_serial, serial) = time_mining(iters, || {
        mine_patterns(series, &detection, &config(PatternMode::EnumerateAll, 1)).expect("mine")
    });
    let (t_parallel, parallel) = time_mining(iters, || {
        mine_patterns(series, &detection, &config(PatternMode::EnumerateAll, 8)).expect("mine")
    });
    assert_identical(
        name,
        &scalar,
        &[
            ("indexed/serial", &serial),
            ("indexed/threads=8", &parallel),
        ],
    );

    // Closed: serial vs threaded (the seed closed miner already counted
    // over per-call tidsets; the index only shares and pre-checks them).
    let (t_closed1, closed1) = time_mining(iters, || {
        mine_patterns(series, &detection, &config(PatternMode::Closed, 1)).expect("mine")
    });
    let (t_closed8, closed8) = time_mining(iters, || {
        mine_patterns(series, &detection, &config(PatternMode::Closed, 8)).expect("mine")
    });
    assert_identical(name, &closed1, &[("closed/threads=8", &closed8)]);
    let counters_after = snapshot(recorder);

    let enumerate_speedup = t_scalar / t_serial;
    eprintln!(
        "  enumerate: scalar {t_scalar:.3}s | indexed {t_serial:.3}s \
         ({enumerate_speedup:.2}x) | threads=8 {t_parallel:.3}s | \
         closed: serial {t_closed1:.3}s | threads=8 {t_closed8:.3}s | \
         {} patterns",
        scalar.len()
    );

    WorkloadResult {
        name,
        n: series.len(),
        detected_periods: periods.len(),
        patterns: scalar.len(),
        scalar_secs: t_scalar,
        indexed_serial_secs: t_serial,
        indexed_parallel_secs: t_parallel,
        closed_serial_secs: t_closed1,
        closed_parallel_secs: t_closed8,
        enumerate_speedup,
        counter_deltas: {
            let mut deltas = [0u64; 7];
            for (slot, (b, a)) in deltas
                .iter_mut()
                .zip(counters_before.iter().zip(counters_after))
            {
                *slot = a - b;
            }
            deltas
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut n: usize = if smoke { 1 << 12 } else { 1 << 17 };
    if let Some(i) = args.iter().position(|a| a == "--n") {
        n = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--n requires a length");
    }
    let iters = if smoke { 1 } else { 3 };
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());

    // Dense: every phase of period 24 planted; at min_support 0.25 with
    // 20% replacement noise the first three Apriori levels stay fully
    // frequent (~13k candidates at full size — the scalar worst case).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let dense_pattern: Vec<Option<usize>> = (0..24)
        .map(|_| Some((xorshift(&mut state) % SIGMA as u64) as usize))
        .collect();
    let dense_series = planted_series(n, 24, &dense_pattern, 20);
    let dense = run_workload("dense", &dense_series, 0.5, 0.25, 30, iters, &recorder);

    // Sparse: 5 planted phases of period 50 in pure noise; the symbols are
    // pairwise distinct so no shorter alias period clears the threshold.
    let mut sparse_pattern: Vec<Option<usize>> = vec![None; 50];
    for (j, slot) in sparse_pattern.iter_mut().enumerate() {
        if j % 10 == 3 {
            *slot = Some(j / 10);
        }
    }
    let sparse_series = planted_series(n, 50, &sparse_pattern, 15);
    let sparse = run_workload("sparse", &sparse_series, 0.5, 0.4, 60, iters, &recorder);

    // Paper-style: the Sect. 2 series tiled out. The tile is exactly
    // periodic at 10, so periods 3 and 10 both fire and the per-period
    // thread fan-out engages (max_period stays below 20: each exact
    // harmonic doubles the 2^p enumeration space).
    let alphabet = Alphabet::latin(3).expect("alphabet");
    let paper_text: String = "abcabbabcb".chars().cycle().take(n).collect();
    let paper_series = SymbolSeries::parse(&paper_text, &alphabet).expect("series");
    let paper = run_workload("paper", &paper_series, 0.5, 0.5, 12, iters, &recorder);

    obs::uninstall();
    let workloads = [&dense, &sparse, &paper];
    let rows: Vec<String> = workloads
        .iter()
        .map(|w| {
            let deltas: Vec<String> = MINING_COUNTERS
                .iter()
                .zip(w.counter_deltas)
                .map(|((_, name), d)| format!("        \"{name}\": {d}"))
                .collect();
            format!(
                "    \"{}\": {{\n      \"n\": {},\n      \"detected_periods\": {},\n      \
                 \"patterns\": {},\n      \"scalar_enumerate_secs\": {:.6},\n      \
                 \"indexed_enumerate_secs\": {:.6},\n      \
                 \"indexed_enumerate_threads8_secs\": {:.6},\n      \
                 \"closed_serial_secs\": {:.6},\n      \
                 \"closed_threads8_secs\": {:.6},\n      \
                 \"enumerate_speedup_vs_scalar\": {:.3},\n      \
                 \"counter_deltas\": {{\n{}\n      }}\n    }}",
                w.name,
                w.n,
                w.detected_periods,
                w.patterns,
                w.scalar_secs,
                w.indexed_serial_secs,
                w.indexed_parallel_secs,
                w.closed_serial_secs,
                w.closed_parallel_secs,
                w.enumerate_speedup,
                deltas.join(",\n"),
            )
        })
        .collect();
    let simd = periodica_transform::simd::active();
    let json = format!(
        "{{\n  \"config\": {{ \"sigma\": {SIGMA}, \"n\": {n}, \"smoke\": {smoke}, \
         \"simd_kernel\": \"{}\", \"simd_lanes\": {} }},\n  \
         \"workloads\": {{\n{}\n  }},\n  \
         \"dense_enumerate_speedup_vs_scalar\": {:.3},\n  \"bit_identical\": true\n}}\n",
        simd.name(),
        simd.lanes(),
        rows.join(",\n"),
        dense.enumerate_speedup,
    );
    println!("{json}");
    if smoke {
        eprintln!("smoke run: skipping BENCH_mining.json");
        return;
    }
    let out_path = std::env::var("BENCH_MINING_OUT").unwrap_or_else(|_| {
        match option_env!("CARGO_MANIFEST_DIR") {
            Some(dir) => format!("{dir}/../../BENCH_mining.json"),
            None => "BENCH_mining.json".to_string(),
        }
    });
    std::fs::write(&out_path, &json).expect("write BENCH_mining.json");
    eprintln!("wrote {out_path}");
}
