//! Criterion bench: the detector's spectrum prune on/off (ablation XA2).
//!
//! The prune is output-identical (tested in periodica-core); this measures
//! what it buys: on high thresholds most periods never need a phase scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use periodica_bench::workloads::noisy;
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_pruning");
    group.sample_size(10);
    let n = 1 << 15;
    let series = noisy(
        SymbolDistribution::Uniform,
        25,
        n,
        &[NoiseKind::Replacement],
        0.15,
        9,
    );
    for threshold in [0.3, 0.6, 0.9] {
        for prune in [true, false] {
            let detector = PeriodicityDetector::new(
                DetectorConfig {
                    threshold,
                    prune,
                    // Bound the period range: the ablation targets scan
                    // cost, not the output-sensitive tail of Def.-1
                    // enumeration at huge periods.
                    max_period: Some(2_048),
                    ..Default::default()
                },
                EngineKind::Spectrum.build(),
            );
            let label = format!("psi={threshold}/prune={prune}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, _| {
                b.iter(|| black_box(detector.detect(&series).expect("detect")))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
