//! Criterion bench: online-detector ingest throughput and query cost
//! versus batch re-detection at increasing watched-period bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use periodica_bench::workloads::noisy;
use periodica_core::{DetectorConfig, EngineKind, OnlineDetector, PeriodicityDetector};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_detector");
    group.sample_size(10);
    let n = 1 << 15;
    let series = noisy(
        SymbolDistribution::Uniform,
        24,
        n,
        &[NoiseKind::Replacement],
        0.2,
        21,
    );

    for &max_period in &[64usize, 256, 1024] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("ingest_stream", max_period),
            &max_period,
            |b, &max_period| {
                b.iter(|| {
                    let mut online = OnlineDetector::builder(series.alphabet().clone())
                        .window(max_period)
                        .build();
                    online
                        .extend(series.symbols().iter().copied())
                        .expect("extend");
                    black_box(online.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ingest_plus_query", max_period),
            &max_period,
            |b, &max_period| {
                b.iter(|| {
                    let mut online = OnlineDetector::builder(series.alphabet().clone())
                        .window(max_period)
                        .build();
                    online
                        .extend(series.symbols().iter().copied())
                        .expect("extend");
                    black_box(online.candidates(0.6).expect("candidates").len())
                })
            },
        );
        // Batch equivalent: re-run the spectrum detector from scratch.
        let batch = PeriodicityDetector::new(
            DetectorConfig {
                threshold: 0.6,
                max_period: Some(max_period),
                ..Default::default()
            },
            EngineKind::Spectrum.build(),
        );
        group.bench_with_input(
            BenchmarkId::new("batch_candidates", max_period),
            &max_period,
            |b, _| b.iter(|| black_box(batch.candidate_periods(&series).expect("batch"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
