//! Criterion bench: pattern assembly — closed (LCM) versus full
//! enumeration (Apriori) after one detection pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use periodica_bench::workloads::noisy;
use periodica_core::{
    mine_patterns, DetectorConfig, EngineKind, PatternMinerConfig, PatternMode, PeriodicityDetector,
};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_assembly");
    group.sample_size(10);
    let n = 1 << 14;
    // Noise keeps the frequent-position set dense-but-not-complete, the
    // regime where the two modes genuinely differ.
    let series = noisy(
        SymbolDistribution::Uniform,
        24,
        n,
        &[NoiseKind::Replacement],
        0.25,
        13,
    );
    let detection = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.4,
            max_period: Some(48),
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&series)
    .expect("detect");

    for (label, mode) in [
        ("closed_lcm", PatternMode::Closed),
        ("enumerate_apriori", PatternMode::EnumerateAll),
    ] {
        let config = PatternMinerConfig {
            min_support: 0.4,
            mode,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, _| {
            b.iter(|| black_box(mine_patterns(&series, &detection, &config).expect("mine")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
