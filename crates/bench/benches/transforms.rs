//! Criterion bench: the transform substrate (ablation XA1, transform half).
//!
//! Compares the from-scratch FFT paths (radix-2 vs Bluestein) and the exact
//! NTT convolution against the schoolbook oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use periodica_transform::complex::Complex;
use periodica_transform::fft::{FftDirection, FftPlanner};
use periodica_transform::ntt::{convolve_exact, convolve_naive, Ntt};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_forward");
    for &n in &[1usize << 10, 1 << 14, 1 << 17] {
        group.throughput(Throughput::Elements(n as u64));
        let mut planner = FftPlanner::new();
        let plan = planner.plan(n, FftDirection::Forward);
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = input.clone();
                plan.process(&mut buf);
                black_box(buf[0])
            })
        });
        // Bluestein at a nearby non-power-of-two size.
        let m = n + 1;
        let blu = planner.plan(m, FftDirection::Forward);
        let input_m: Vec<Complex> = (0..m)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("bluestein", m), &m, |b, _| {
            b.iter(|| {
                let mut buf = input_m.clone();
                blu.process(&mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward");
    for &n in &[1usize << 10, 1 << 14, 1 << 17] {
        group.throughput(Throughput::Elements(n as u64));
        let plan = Ntt::new(n).expect("plan");
        let input: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = input.clone();
                plan.forward(&mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

fn bench_exact_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_convolution");
    group.sample_size(20);
    for &n in &[256usize, 1024, 4096] {
        let a: Vec<u64> = (0..n).map(|i| u64::from(i % 3 == 0)).collect();
        group.bench_with_input(BenchmarkId::new("ntt", n), &n, |b, _| {
            b.iter(|| black_box(convolve_exact(&a, &a).expect("fits")))
        });
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("schoolbook", n), &n, |b, _| {
                b.iter(|| black_box(convolve_naive(&a, &a)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_ntt, bench_exact_convolution);
criterion_main!(benches);
