//! Criterion bench: Fig. 5's head-to-head in bench form — our
//! periodicity-detection phase (convolution + candidate determination,
//! O(n log n); see DESIGN.md §8.2 for why the *full* Def.-1 enumeration is
//! output-sensitive and not a meaningful scaling target) versus the
//! periodic-trends sketch spectrum (O(n log^2 n)) at growing sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use periodica_baselines::indyk::{PeriodicTrends, PeriodicTrendsConfig};
use periodica_baselines::shift_distance::symbol_values;
use periodica_bench::workloads::noisy;
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_vs_periodic_trends");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let series = noisy(
            SymbolDistribution::Uniform,
            25,
            n,
            &[NoiseKind::Replacement],
            0.2,
            3,
        );
        group.throughput(Throughput::Elements(n as u64));

        let detector = PeriodicityDetector::new(
            DetectorConfig {
                threshold: 0.6,
                ..Default::default()
            },
            EngineKind::Spectrum.build(),
        );
        group.bench_with_input(BenchmarkId::new("ours_detect", n), &n, |b, _| {
            b.iter(|| black_box(detector.candidate_periods(&series).expect("detect")))
        });

        let values = symbol_values(&series);
        let trends = PeriodicTrends::new(PeriodicTrendsConfig::default());
        group.bench_with_input(BenchmarkId::new("periodic_trends", n), &n, |b, _| {
            b.iter(|| black_box(trends.distance_spectrum(&values, n / 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
