//! Criterion bench: the three convolution engines (ablation XA1).
//!
//! Naive shift-and-compare vs bit-parallel shift-AND vs exact-NTT spectrum,
//! producing the identical match spectrum. Expected shape: naive quadratic,
//! bitset quadratic/64, spectrum n log n — with the crossovers visible as
//! n grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use periodica_bench::workloads::{noisy, PAPER_SIGMA};
use periodica_core::EngineKind;
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;
use periodica_series::SymbolSeries;

fn workload(n: usize) -> SymbolSeries {
    noisy(
        SymbolDistribution::Uniform,
        25,
        n,
        &[NoiseKind::Replacement],
        0.2,
        7,
    )
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_spectrum");
    group.sample_size(10);
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        let series = workload(n);
        let max_p = n / 2;
        group.throughput(Throughput::Elements((n * PAPER_SIGMA) as u64));
        for kind in EngineKind::all() {
            // The naive engine at the largest size is exactly the quadratic
            // cost the paper's convolution replaces; keep it to show the
            // crossover, but skip absurd sizes.
            if kind == EngineKind::Naive && n > 1 << 13 {
                continue;
            }
            let engine = kind.build();
            group.bench_with_input(BenchmarkId::new(engine.name(), n), &n, |b, _| {
                b.iter(|| black_box(engine.match_spectrum(&series, max_p).expect("spectrum")))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
