//! Criterion bench: every baseline detector on one workload, for the
//! cost-per-algorithm overview that complements Fig. 5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use periodica_baselines::berberidis::{self, BerberidisConfig};
use periodica_baselines::indyk::{PeriodicTrends, PeriodicTrendsConfig};
use periodica_baselines::ma_hellerstein::{self, MaHellersteinConfig};
use periodica_baselines::shift_distance::{shift_distance_spectrum, symbol_values};
use periodica_bench::workloads::noisy;
use periodica_core::{DetectorConfig, EngineKind, PeriodicityDetector};
use periodica_series::generate::SymbolDistribution;
use periodica_series::noise::NoiseKind;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_detectors");
    group.sample_size(10);
    let n = 1 << 14;
    let series = noisy(
        SymbolDistribution::Uniform,
        25,
        n,
        &[NoiseKind::Replacement],
        0.2,
        11,
    );
    let values = symbol_values(&series);

    let detector = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.5,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    );
    // The detection *phase* (candidate periods), matching the period-level
    // granularity the other baselines produce.
    group.bench_function("ours_one_pass", |b| {
        b.iter(|| black_box(detector.candidate_periods(&series).expect("detect")))
    });

    let trends = PeriodicTrends::new(PeriodicTrendsConfig::default());
    group.bench_function("indyk_periodic_trends", |b| {
        b.iter(|| black_box(trends.distance_spectrum(&values, n / 2)))
    });

    group.bench_function("exact_shift_distance", |b| {
        b.iter(|| black_box(shift_distance_spectrum(&values, n / 2)))
    });

    group.bench_function("ma_hellerstein", |b| {
        b.iter(|| {
            black_box(ma_hellerstein::find_periods(
                &series,
                &MaHellersteinConfig::default(),
            ))
        })
    });

    group.bench_function("berberidis_filter", |b| {
        b.iter(|| {
            black_box(
                berberidis::candidate_periods(&series, &BerberidisConfig::default()).expect("ok"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
