//! Regenerates the committed golden-fixture corpus in `tests/fixtures/`.
//!
//! ```text
//! cargo run -p periodica-oracle --example gen_fixtures
//! ```
//!
//! Every fixture is fully deterministic: series are built from explicit
//! constructions (planted periodic bases with LCG noise at fixed seeds), and
//! expectations are computed by the oracle. Hand-checked anchor values (the
//! paper's worked example) are asserted here, so regeneration fails loudly
//! if the oracle ever drifts from the paper.
//!
//! The corpus spans the adversarial axes the conformance harness cares
//! about: period-boundary lengths `n ≡ {0, 1, p-1} (mod p)`, the
//! single-symbol alphabet, alphabet sizes at the 64-bit packing boundary
//! (63/64/65), and thresholds hitting confidences exactly.

use std::path::PathBuf;
use std::sync::Arc;

use periodica_oracle::fixture::Fixture;
use periodica_oracle::naive;
use periodica_series::{Alphabet, SymbolId, SymbolSeries};

/// Per-period candidate-space cap for fixture pattern enumeration. Wide
/// alphabets with many detected phases exceed it and record
/// `patterns_complete = false` instead of patterns.
const PATTERN_CAP: usize = 1 << 14;

/// Deterministic noise source (64-bit LCG, high bits).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// A period-`p` repetition of `0, 1, ..., p-1 (mod sigma)` over `n`
/// symbols, with `noise_pct`% of positions replaced by LCG-chosen symbols.
fn planted(sigma: usize, n: usize, period: usize, noise_pct: usize, seed: u64) -> SymbolSeries {
    let alphabet = wide_alphabet(sigma);
    let mut lcg = Lcg(seed);
    let ids: Vec<SymbolId> = (0..n)
        .map(|i| {
            let base = (i % period) % sigma;
            let id = if lcg.below(100) < noise_pct {
                lcg.below(sigma)
            } else {
                base
            };
            SymbolId::from_index(id)
        })
        .collect();
    SymbolSeries::from_ids(ids, alphabet).expect("planted series")
}

/// `a..z` for small sizes, `s0, s1, ...` beyond the latin limit.
fn wide_alphabet(sigma: usize) -> Arc<Alphabet> {
    if sigma <= 26 {
        Alphabet::latin(sigma).expect("latin alphabet")
    } else {
        Alphabet::from_symbols((0..sigma).map(|i| format!("s{i}"))).expect("wide alphabet")
    }
}

fn parse(text: &str, sigma: usize) -> SymbolSeries {
    let alphabet = Alphabet::latin(sigma).expect("latin alphabet");
    SymbolSeries::parse(text, &alphabet).expect("series text")
}

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create tests/fixtures");

    let mut fixtures: Vec<Fixture> = Vec::new();

    // --- The paper's worked example (Sect. 2.2 / Sect. 3), hand-checked. --
    let paper = parse("abcabbabcb", 3);
    let f = Fixture::from_series(
        "paper-worked-example",
        "Paper Sect. 2.2: abcabbabcb at psi = 2/3, default period range n/2; \
         anchors (a,3,0) = 2/3, (b,3,1) = 1, and pattern ab* = 2/3",
        &paper,
        2,
        3,
        1,
        5,
        PATTERN_CAP,
    );
    // Hand-checked anchors from the paper; regeneration must reproduce them.
    assert!(
        f.periodicities.contains(&(0, 3, 0, 2, 3)),
        "paper anchor (a, p=3, l=0, 2/3) missing: {:?}",
        f.periodicities
    );
    assert!(
        f.periodicities.contains(&(1, 3, 1, 2, 2)),
        "paper anchor (b, p=3, l=1, 2/2) missing"
    );
    let ab_star = (3usize, vec![Some(0usize), Some(1), None], 2u64, 3u64);
    assert!(
        f.patterns.contains(&ab_star),
        "paper anchor pattern ab* = 2/3 missing: {:?}",
        f.patterns
    );
    fixtures.push(f);

    fixtures.push(Fixture::from_series(
        "paper-worked-example-full-range",
        "The same series examined over the full period range 1..=n-1 \
         (exercises bounded-lag vs full-range engine paths)",
        &paper,
        2,
        3,
        1,
        9,
        PATTERN_CAP,
    ));

    // --- Period-boundary lengths: n = 0, 1, p-1 (mod p). -----------------
    for (name, n, p, desc) in [
        (
            "boundary-n-mod-p-0",
            40usize,
            5usize,
            "n = 40 = 0 (mod 5): every phase projection has equal length",
        ),
        (
            "boundary-n-mod-p-1",
            41,
            5,
            "n = 41 = 1 (mod 5): phase 0 has one more projection entry than the rest",
        ),
        (
            "boundary-n-mod-p-minus-1",
            44,
            5,
            "n = 44 = p-1 (mod 5): only the last phase is one entry short",
        ),
        (
            "boundary-n-mod-p-0-p7",
            49,
            7,
            "n = 49 = 0 (mod 7): a second period residue class, coarser period",
        ),
    ] {
        let series = planted(5, n, p, 18, 0xC0FFEE ^ n as u64);
        fixtures.push(Fixture::from_series(
            name,
            desc,
            &series,
            3,
            5,
            1,
            (2 * p).min(n / 2),
            PATTERN_CAP,
        ));
    }

    // --- Single-symbol alphabet: everything is perfectly periodic. -------
    let ones = SymbolSeries::from_ids(
        vec![SymbolId::from_index(0); 17],
        Alphabet::latin(1).expect("alphabet"),
    )
    .expect("series");
    fixtures.push(Fixture::from_series(
        "single-symbol-alphabet",
        "sigma = 1, n = 17 prime, psi = 1: every (period, phase) is perfectly \
         periodic; stresses degenerate-alphabet paths and psi at its maximum",
        &ones,
        1,
        1,
        1,
        8,
        PATTERN_CAP,
    ));
    let ones12 = SymbolSeries::from_ids(
        vec![SymbolId::from_index(0); 12],
        Alphabet::latin(1).expect("alphabet"),
    )
    .expect("series");
    fixtures.push(Fixture::from_series(
        "single-symbol-full-range",
        "sigma = 1, n = 12, full period range 1..=11 including p = n-1, \
         where most phases have a single projection entry",
        &ones12,
        1,
        1,
        1,
        11,
        PATTERN_CAP,
    ));

    // --- Alphabet sizes at the 64-bit packing boundary. -------------------
    for (name, sigma, n, p, desc) in [
        (
            "sigma-63",
            63usize,
            256usize,
            63usize,
            "sigma = 63 (one below the u64 word boundary), planted period 63",
        ),
        (
            "sigma-64",
            64,
            256,
            64,
            "sigma = 64 (exactly one u64 word per indicator block), planted period 64",
        ),
        (
            "sigma-65",
            65,
            260,
            65,
            "sigma = 65 (one past the word boundary), planted period 65",
        ),
        (
            "sigma-63-boundary-length",
            63,
            170,
            9,
            "sigma = 63 with only 9 symbols used (sparse indicator rows) and \
             n = 170 = 8 (mod 9), a p-1 length residue",
        ),
    ] {
        let series = planted(sigma, n, p, 12, 0xFEED ^ (sigma as u64) << 8 ^ n as u64);
        fixtures.push(Fixture::from_series(
            name,
            desc,
            &series,
            1,
            2,
            1,
            (n / 2).min(p + 7),
            PATTERN_CAP,
        ));
    }

    // --- Thresholds hitting confidences exactly. --------------------------
    // Phase 0 of period 3 projects to a,a,a,a,b: F2(a) = 3 of 4 pairs, so
    // psi = 3/4 includes (a,3,0) at exact equality; phases 1 and 2 are
    // perfect (d,e), and no symbol sits at 2/4 without being dominated.
    let exact_hit = parse("adeadeadeadebde", 5);
    let f = Fixture::from_series(
        "threshold-exact-hit",
        "psi = 3/4 equals conf(a, p=3, l=0) = 3/4 exactly: the fixture pins \
         the inclusive boundary of Def. 1 under the 1e-12 tolerance",
        &exact_hit,
        3,
        4,
        1,
        7,
        PATTERN_CAP,
    );
    assert!(
        f.periodicities.contains(&(0, 3, 0, 3, 4)),
        "exact-threshold anchor (a, p=3, l=0, 3/4) missing: {:?}",
        f.periodicities
    );
    fixtures.push(f);

    // Pattern-level exact threshold: ab?? holds on pairs 0-1 and 1-2 but
    // not 2-3 (segment 3 reads aecd), so support = 2/3 = psi exactly.
    let exact_pattern = parse("abcdabcdabcdaecd", 5);
    let f = Fixture::from_series(
        "threshold-exact-pattern",
        "psi = 2/3 equals the multi-symbol support of ab** on period 4 \
         exactly (Def. 3 whole-segment denominator ceil(16/4) - 1 = 3)",
        &exact_pattern,
        2,
        3,
        4,
        4,
        PATTERN_CAP,
    );
    let ab_multi = (4usize, vec![Some(0usize), Some(1), None, None], 2u64, 3u64);
    assert!(
        f.patterns.contains(&ab_multi),
        "exact-threshold pattern anchor ab** = 2/3 missing: {:?}",
        f.patterns
    );
    fixtures.push(f);

    // --- Chunk-boundary adversaries for the out-of-core pipeline. ---------
    // Periods pinned to the conformance chunk size (== chunk, chunk ± 1,
    // and a segment spanning three chunks); the conformance harness mines
    // these through the file-backed streaming path across a chunk-size
    // sweep and diffs bit-for-bit against the in-core engine and these
    // oracle expectations.
    for (name, config) in periodica_datagen::chunkedge::conformance_fixtures() {
        let series = config.generate().expect("chunk-edge series");
        let desc = format!(
            "Chunk-boundary adversary: planted period {} against the {}-symbol \
             conformance chunk, n = {}, {}% replacement noise",
            config.period,
            periodica_datagen::chunkedge::CONFORMANCE_CHUNK,
            config.length,
            config.noise_pct
        );
        fixtures.push(Fixture::from_series(
            name,
            &desc,
            &series,
            3,
            5,
            1,
            config.period + 6,
            PATTERN_CAP,
        ));
    }

    // --- A sparse heartbeat among noise (the intro's event-log shape). ----
    let mut lcg = Lcg(0xBEA7);
    let heartbeat: Vec<SymbolId> = (0..37)
        .map(|i| {
            if i % 6 == 2 {
                SymbolId::from_index(0) // the heartbeat symbol
            } else {
                SymbolId::from_index(1 + lcg.below(2))
            }
        })
        .collect();
    let heartbeat =
        SymbolSeries::from_ids(heartbeat, Alphabet::latin(3).expect("alphabet")).expect("series");
    fixtures.push(Fixture::from_series(
        "sparse-heartbeat",
        "A dedicated symbol firing every 6 positions inside 2-symbol noise, \
         n = 37 = 1 (mod 6): the sparse-symbol regime the online detector's \
         phase-blind bound is sharp for",
        &heartbeat,
        5,
        6,
        1,
        18,
        PATTERN_CAP,
    ));

    // ----------------------------------------------------------------------
    assert!(
        fixtures.len() >= 17,
        "corpus shrank to {} fixtures",
        fixtures.len()
    );
    let mut complete = 0;
    for fixture in &fixtures {
        // Every fixture must re-verify against the oracle before landing on
        // disk: expectations are only ever written if recomputation agrees.
        let series = fixture.build_series().expect("series rebuilds");
        let recomputed = naive::symbol_periodicities(
            &series,
            fixture.psi(),
            fixture.min_period,
            Some(fixture.max_period),
        );
        assert_eq!(
            recomputed.len(),
            fixture.periodicities.len(),
            "fixture {} drifted",
            fixture.name
        );
        for (pattern, support) in fixture.expected_patterns() {
            assert_eq!(
                naive::pattern_support(&series, &pattern),
                support,
                "fixture {} pattern drifted",
                fixture.name
            );
        }
        if fixture.patterns_complete {
            complete += 1;
        }
        let path = dir.join(format!("{}.json", fixture.name));
        std::fs::write(&path, fixture.to_json()).expect("write fixture");
        println!(
            "{:32} n={:4} sigma={:3} psi={}/{}  periodicities={:4} patterns={:4}{}",
            fixture.name,
            fixture.series.len(),
            fixture.alphabet.len(),
            fixture.psi_num,
            fixture.psi_den,
            fixture.periodicities.len(),
            fixture.patterns.len(),
            if fixture.patterns_complete {
                ""
            } else {
                " (incomplete)"
            }
        );
    }
    assert!(
        complete >= 8,
        "too few fixtures with complete pattern sets: {complete}"
    );
    println!("wrote {} fixtures to {}", fixtures.len(), dir.display());
}
