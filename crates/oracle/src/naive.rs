//! The reference computations, written to read like the paper.
//!
//! Conventions mirrored from the paper (and therefore from the production
//! contract):
//!
//! * a projection `pi(p, l)` is the subsequence at positions
//!   `l, l+p, l+2p, ...` strictly below `n`, of length `m = ceil((n-l)/p)`;
//! * `F2` uses **overlapping** adjacent pairs: `F2(a, "aaa") = 2`;
//! * Def.-1 confidence is `F2 / (m - 1)`, undefined (never emitted) when
//!   `m < 2`;
//! * Def.-2 single-symbol pattern support uses the phase-specific
//!   denominator `ceil((n-l)/p) - 1`; Def.-3 multi-symbol support uses the
//!   whole-segment denominator `ceil(n/p) - 1`;
//! * threshold comparisons allow the same `1e-12` tolerance as production,
//!   so exact-rational thresholds land on the same side in both worlds.

use periodica_series::{SymbolId, SymbolSeries};

/// Tolerance for floating-point threshold comparisons (identical to the
/// production detector's).
pub const EPS: f64 = 1e-12;

/// The projection `pi(p, l)`, materialized: every position `i < n` with
/// `i >= l` and `(i - l)` a multiple of `p`, in order.
///
/// Returns an empty vector for `p == 0` (no projection is defined).
pub fn projection(series: &SymbolSeries, p: usize, l: usize) -> Vec<SymbolId> {
    if p == 0 {
        return Vec::new();
    }
    let data = series.symbols();
    let mut out = Vec::new();
    for (i, &sym) in data.iter().enumerate() {
        if i >= l && (i - l).is_multiple_of(p) {
            out.push(sym);
        }
    }
    out
}

/// `F2(symbol, pi(p, l))`: the number of *overlapping* adjacent positions
/// `(j, j+1)` in the projection where both entries equal `symbol`.
pub fn f2(series: &SymbolSeries, symbol: SymbolId, p: usize, l: usize) -> u64 {
    let proj = projection(series, p, l);
    let mut count = 0;
    for j in 0..proj.len().saturating_sub(1) {
        if proj[j] == symbol && proj[j + 1] == symbol {
            count += 1;
        }
    }
    count
}

/// Def.-1 confidence of `(symbol, p, l)`: `F2 / (m - 1)`, or 0 when the
/// projection has fewer than two entries.
pub fn confidence(series: &SymbolSeries, symbol: SymbolId, p: usize, l: usize) -> f64 {
    let m = projection(series, p, l).len();
    if m < 2 {
        return 0.0;
    }
    f2(series, symbol, p, l) as f64 / (m - 1) as f64
}

/// Total lag-`p` match count for one symbol: the number of positions `j`
/// with `j + p < n` and `t_j = t_{j+p} = symbol`. Equals
/// `sum_l F2(symbol, pi(p, l))` for `p >= 1`; for `p == 0` it degenerates
/// to the symbol's occurrence count, matching the production convention.
pub fn lag_matches(series: &SymbolSeries, symbol: SymbolId, p: usize) -> u64 {
    let data = series.symbols();
    let mut count = 0;
    for j in 0..data.len() {
        if p == 0 {
            if data[j] == symbol {
                count += 1;
            }
        } else if j + p < data.len() && data[j] == symbol && data[j + p] == symbol {
            count += 1;
        }
    }
    count
}

/// One Def.-1 symbol periodicity as the oracle states it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OraclePeriodicity {
    /// The periodic symbol.
    pub symbol: SymbolId,
    /// Its period.
    pub period: usize,
    /// The starting phase (`0 <= phase < period`).
    pub phase: usize,
    /// `F2` of the symbol in `pi(period, phase)`.
    pub f2: u64,
    /// `m - 1`, the number of adjacent projection pairs.
    pub denominator: u64,
    /// `f2 / denominator`.
    pub confidence: f64,
}

/// All Def.-1 symbol periodicities with confidence `>= psi` (within
/// [`EPS`]) for periods `min_period ..= max_period`, each phase considered,
/// sorted by `(period, phase, symbol)`.
///
/// `max_period = None` defaults to `n / 2` as in the paper's algorithm,
/// clamped to `n - 1`; this mirrors the production detector's validation.
pub fn symbol_periodicities(
    series: &SymbolSeries,
    psi: f64,
    min_period: usize,
    max_period: Option<usize>,
) -> Vec<OraclePeriodicity> {
    let n = series.len();
    let min_p = min_period.max(1);
    let max_p = max_period.unwrap_or(n / 2).min(n.saturating_sub(1));
    let mut out = Vec::new();
    for p in min_p..=max_p {
        for l in 0..p {
            let m = projection(series, p, l).len();
            if m < 2 {
                continue;
            }
            for symbol in series.alphabet().ids() {
                let count = f2(series, symbol, p, l);
                let conf = count as f64 / (m - 1) as f64;
                if conf + EPS >= psi {
                    out.push(OraclePeriodicity {
                        symbol,
                        period: p,
                        phase: l,
                        f2: count,
                        denominator: (m - 1) as u64,
                        confidence: conf,
                    });
                }
            }
        }
    }
    out.sort_by_key(|sp| (sp.period, sp.phase, sp.symbol));
    out
}

/// The phase-blind candidate-period test, by definition: period `p` is a
/// candidate when some symbol's total lag-`p` match count could still meet
/// `psi` at the smallest positive-phase denominator. This is the sound
/// pruning bound production applies before phase scans, restated naively.
pub fn candidate_periods(
    series: &SymbolSeries,
    psi: f64,
    min_period: usize,
    max_period: Option<usize>,
) -> Vec<usize> {
    let n = series.len();
    let min_p = min_period.max(1);
    let max_p = max_period.unwrap_or(n / 2).min(n.saturating_sub(1));
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    for p in min_p..=max_p {
        // No phase has two projection entries: the period is undetectable.
        if projection(series, p, 0).len() < 2 {
            continue;
        }
        let d_min_pos = projection(series, p, p - 1).len().saturating_sub(1).max(1);
        let bound = psi * d_min_pos as f64 - EPS;
        let hit = series
            .alphabet()
            .ids()
            .any(|sym| lag_matches(series, sym, p) as f64 >= bound);
        if hit {
            out.push(p);
        }
    }
    out
}

/// A candidate pattern: one optional symbol per phase of a period.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OraclePattern {
    /// The period (also the number of slots).
    pub period: usize,
    /// `slots[l]` is the required symbol at phase `l`, or `None` for the
    /// don't-care `*`.
    pub slots: Vec<Option<SymbolId>>,
}

impl OraclePattern {
    /// Builds a pattern from fixed `(phase, symbol)` positions.
    pub fn new(period: usize, fixed: &[(usize, SymbolId)]) -> OraclePattern {
        let mut slots = vec![None; period];
        for &(l, s) in fixed {
            slots[l] = Some(s);
        }
        OraclePattern { period, slots }
    }

    /// Number of fixed (non-`*`) slots.
    pub fn cardinality(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The fixed positions as `(phase, symbol)` pairs, ascending phase.
    pub fn fixed(&self) -> Vec<(usize, SymbolId)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(l, s)| s.map(|sym| (l, sym)))
            .collect()
    }

    /// Whether every fixed slot of `self` is fixed identically in `other`.
    pub fn is_subpattern_of(&self, other: &OraclePattern) -> bool {
        self.period == other.period
            && self
                .slots
                .iter()
                .zip(&other.slots)
                .all(|(a, b)| a.is_none() || a == b)
    }

    /// Renders the pattern like the paper: one character or name per phase,
    /// `*` for don't-care.
    pub fn render(&self, series: &SymbolSeries) -> String {
        let alphabet = series.alphabet();
        let mut out = String::new();
        for slot in &self.slots {
            match slot {
                Some(sym) => out.push_str(alphabet.name(*sym)),
                None => out.push('*'),
            }
        }
        out
    }
}

/// A support measurement as the oracle states it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleSupport {
    /// Number of consecutive segment pairs matching every fixed phase.
    pub count: u64,
    /// Number of eligible pairs (Def.-2 phase-specific for single-symbol
    /// patterns, Def.-3 whole-segment for multi-symbol).
    pub denominator: u64,
    /// `count / denominator` (0 when the denominator is 0).
    pub support: f64,
}

/// The pair indices `i` (consecutive segments `i` and `i+1`) at which the
/// pattern matches: every fixed phase exists in both segments and holds the
/// required symbol.
pub fn matching_pairs(series: &SymbolSeries, pattern: &OraclePattern) -> Vec<usize> {
    let n = series.len();
    let p = pattern.period;
    let data = series.symbols();
    let mut out = Vec::new();
    if p == 0 || pattern.cardinality() == 0 {
        return out;
    }
    let segments = n.div_ceil(p);
    for i in 0..segments.saturating_sub(1) {
        let matches = pattern.fixed().iter().all(|&(l, s)| {
            let a = i * p + l;
            let b = (i + 1) * p + l;
            a < n && b < n && data[a] == s && data[b] == s
        });
        if matches {
            out.push(i);
        }
    }
    out
}

/// Measures a pattern's support by literal definition.
///
/// Single-symbol patterns (Def. 2) divide by the phase-specific pair count
/// `ceil((n-l)/p) - 1`; multi-symbol patterns (Def. 3) divide by the
/// whole-segment pair count `ceil(n/p) - 1`. A zero denominator (or an
/// all-don't-care pattern) measures as `0 / 0` with support 0.
pub fn pattern_support(series: &SymbolSeries, pattern: &OraclePattern) -> OracleSupport {
    let n = series.len();
    let p = pattern.period;
    let fixed = pattern.fixed();
    if fixed.is_empty() || n == 0 || p == 0 {
        return OracleSupport {
            count: 0,
            denominator: 0,
            support: 0.0,
        };
    }
    let denominator = if fixed.len() == 1 {
        projection(series, p, fixed[0].0).len().saturating_sub(1)
    } else {
        projection(series, p, 0).len().saturating_sub(1)
    };
    if denominator == 0 {
        return OracleSupport {
            count: 0,
            denominator: 0,
            support: 0.0,
        };
    }
    let count = matching_pairs(series, pattern).len() as u64;
    OracleSupport {
        count,
        denominator: denominator as u64,
        support: count as f64 / denominator as f64,
    }
}

/// Every frequent pattern (support `>= psi` within [`EPS`]), found by the
/// paper's Cartesian-product reading of Def. 3: detect the Def.-1 singles,
/// then enumerate *all* combinations of one detected symbol-or-`*` per
/// phase at each detected period and measure each combination literally.
///
/// Returns `Err` with a message when a period's candidate space exceeds
/// `cap` — the caller chose a workload too dense to enumerate.
///
/// Output is sorted by `(period, slots)`; supports are measured by
/// [`pattern_support`], so single-symbol patterns carry their Def.-2
/// phase-specific denominators.
pub fn frequent_patterns(
    series: &SymbolSeries,
    psi: f64,
    min_period: usize,
    max_period: Option<usize>,
    cap: usize,
) -> Result<Vec<(OraclePattern, OracleSupport)>, String> {
    let detection = symbol_periodicities(series, psi, min_period, max_period);
    let mut periods: Vec<usize> = detection.iter().map(|sp| sp.period).collect();
    periods.sort_unstable();
    periods.dedup();

    let mut out = Vec::new();
    for &p in &periods {
        let mut per_phase: Vec<Vec<SymbolId>> = vec![Vec::new(); p];
        for sp in detection.iter().filter(|sp| sp.period == p) {
            per_phase[sp.phase].push(sp.symbol);
        }
        let mut size = 1usize;
        for opts in &per_phase {
            size = size.saturating_mul(opts.len() + 1);
            if size > cap {
                return Err(format!(
                    "period {p}: candidate space {size} exceeds cap {cap}"
                ));
            }
        }
        // Build the full product, one phase at a time.
        let mut partials: Vec<Vec<(usize, SymbolId)>> = vec![Vec::new()];
        for (l, opts) in per_phase.iter().enumerate() {
            let mut next = Vec::new();
            for partial in &partials {
                next.push(partial.clone()); // the '*' choice
                for &s in opts {
                    let mut with = partial.clone();
                    with.push((l, s));
                    next.push(with);
                }
            }
            partials = next;
        }
        for fixed in partials {
            if fixed.is_empty() {
                continue; // the all-don't-care pattern carries no claim
            }
            let pattern = OraclePattern::new(p, &fixed);
            let support = pattern_support(series, &pattern);
            if support.support + EPS >= psi {
                out.push((pattern, support));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// The closure of a pattern within an item universe: the pattern fixing
/// every item `(phase, symbol)` from `items` that matches on **all** of the
/// pattern's matching pairs. A pattern is *closed* when it equals its own
/// closure — no super-pattern shares its support count.
pub fn closure(
    series: &SymbolSeries,
    items: &[(usize, SymbolId)],
    pattern: &OraclePattern,
) -> OraclePattern {
    let pairs = matching_pairs(series, pattern);
    let n = series.len();
    let p = pattern.period;
    let data = series.symbols();
    let mut fixed: Vec<(usize, SymbolId)> = Vec::new();
    for &(l, s) in items {
        let everywhere = pairs.iter().all(|&i| {
            let a = i * p + l;
            let b = (i + 1) * p + l;
            a < n && b < n && data[a] == s && data[b] == s
        });
        if everywhere {
            fixed.push((l, s));
        }
    }
    OraclePattern::new(p, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use periodica_series::Alphabet;
    use std::sync::Arc;

    fn paper_series() -> SymbolSeries {
        let a = Alphabet::latin(3).expect("alphabet");
        SymbolSeries::parse("abcabbabcb", &a).expect("series")
    }

    fn sym(c: char) -> SymbolId {
        SymbolId::from_index((c as u8 - b'a') as usize)
    }

    #[test]
    fn f2_uses_overlapping_pairs() {
        let a = Alphabet::latin(1).expect("alphabet");
        let s = SymbolSeries::parse("aaa", &a).expect("series");
        // The convention the whole stack rests on: F2(a, "aaa") = 2.
        assert_eq!(f2(&s, sym('a'), 1, 0), 2);
    }

    #[test]
    fn projection_matches_paper_section_2() {
        // pi(3, 0) of abcabbabcb = t0 t3 t6 t9 = a a a b (paper Sect. 2.2).
        let s = paper_series();
        let proj = projection(&s, 3, 0);
        assert_eq!(proj, vec![sym('a'), sym('a'), sym('a'), sym('b')]);
        assert_eq!(f2(&s, sym('a'), 3, 0), 2);
        assert!((confidence(&s, sym('a'), 3, 0) - 2.0 / 3.0).abs() < 1e-12);
        // pi(3, 1) = t1 t4 t7 = b b b: perfectly periodic.
        assert_eq!(f2(&s, sym('b'), 3, 1), 2);
        assert!((confidence(&s, sym('b'), 3, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lag_matches_decomposes_over_phases() {
        let s = paper_series();
        for p in 1..s.len() {
            for symbol in s.alphabet().ids() {
                let by_phase: u64 = (0..p).map(|l| f2(&s, symbol, p, l)).sum();
                assert_eq!(lag_matches(&s, symbol, p), by_phase, "p={p}");
            }
        }
        // Lag 3 on the paper series: 2 a-matches + 2 b-matches ("four
        // symbol matches", paper Sect. 3).
        assert_eq!(lag_matches(&s, sym('a'), 3), 2);
        assert_eq!(lag_matches(&s, sym('b'), 3), 2);
        assert_eq!(lag_matches(&s, sym('c'), 3), 0);
    }

    #[test]
    fn detects_paper_worked_example() {
        let s = paper_series();
        let detected = symbol_periodicities(&s, 2.0 / 3.0, 1, None);
        // (a, 3, 0) at 2/3 and (b, 3, 1) at 1 are both present.
        assert!(detected
            .iter()
            .any(|sp| sp.symbol == sym('a') && sp.period == 3 && sp.phase == 0 && sp.f2 == 2));
        assert!(detected.iter().any(|sp| sp.symbol == sym('b')
            && sp.period == 3
            && sp.phase == 1
            && (sp.confidence - 1.0).abs() < 1e-12));
    }

    #[test]
    fn pattern_support_reproduces_worked_values() {
        let s = paper_series();
        // ab* on period 3: segments ab c | ab b | ab c | b; pairs 0-1 and
        // 1-2 match, pair 2-3 fails (segment 3 has b at phase 0) -> 2/3.
        let ab = OraclePattern::new(3, &[(0, sym('a')), (1, sym('b'))]);
        let sup = pattern_support(&s, &ab);
        assert_eq!((sup.count, sup.denominator), (2, 3));
        // *b* is a single-symbol pattern: Def.-2 phase denominator, 2/2.
        let b = OraclePattern::new(3, &[(1, sym('b'))]);
        let sup = pattern_support(&s, &b);
        assert_eq!((sup.count, sup.denominator), (2, 2));
        assert!((sup.support - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequent_patterns_contain_the_worked_pattern() {
        let s = paper_series();
        let frequent = frequent_patterns(&s, 2.0 / 3.0, 3, Some(3), 1 << 16).expect("cap");
        let ab = OraclePattern::new(3, &[(0, sym('a')), (1, sym('b'))]);
        let hit = frequent.iter().find(|(p, _)| *p == ab).expect("ab* mined");
        assert_eq!((hit.1.count, hit.1.denominator), (2, 3));
        // Every reported pattern re-measures to its reported support.
        for (pattern, support) in &frequent {
            assert_eq!(pattern_support(&s, pattern), *support);
        }
    }

    #[test]
    fn closure_fixes_implied_positions() {
        let a = Alphabet::latin(2).expect("alphabet");
        let s = SymbolSeries::parse("ababababab", &a).expect("series");
        let items = vec![(0usize, sym('a')), (1usize, sym('b'))];
        let only_a = OraclePattern::new(2, &[(0, sym('a'))]);
        // b at phase 1 holds on every pair a-at-phase-0 holds on.
        let closed = closure(&s, &items, &only_a);
        assert_eq!(
            closed,
            OraclePattern::new(2, &[(0, sym('a')), (1, sym('b'))])
        );
        assert!(only_a.is_subpattern_of(&closed));
    }

    #[test]
    fn degenerate_inputs_measure_as_zero() {
        let a = Alphabet::latin(2).expect("alphabet");
        let s = SymbolSeries::from_ids(Vec::new(), Arc::clone(&a)).expect("empty");
        assert!(projection(&s, 3, 0).is_empty());
        assert_eq!(lag_matches(&s, sym('a'), 1), 0);
        assert!(symbol_periodicities(&s, 0.5, 1, None).is_empty());
        let p = OraclePattern::new(3, &[(0, sym('a'))]);
        assert_eq!(pattern_support(&s, &p).denominator, 0);
        let s1 = SymbolSeries::parse("ab", &a).expect("series");
        // Period >= n: single projection entry per phase, nothing detected.
        assert!(symbol_periodicities(&s1, 0.1, 1, Some(5)).is_empty());
    }
}
