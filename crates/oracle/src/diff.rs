//! Divergence reporting for differential harnesses.
//!
//! A harness runs a production path and the oracle on the same workload,
//! converts the production answer into oracle vocabulary
//! ([`crate::naive::OraclePeriodicity`], [`crate::naive::OraclePattern`],
//! …), and hands both sides to a `diff_*` function. The result is `None`
//! (conformant) or a [`Divergence`] that names the workload, the production
//! path, and the first mismatch precisely enough to bisect — which fixture
//! to replay, which `(symbol, period, phase)` to stare at.
//!
//! Counts are compared exactly; confidences/supports within `1e-9`
//! (both sides compute them as `count / denominator`, so any wider gap
//! means the integers differ).

use std::fmt;

use crate::naive::{OraclePattern, OraclePeriodicity, OracleSupport};

/// Tolerance when comparing derived ratios. Counts and denominators are
/// compared exactly; a ratio gap beyond this bound cannot come from
/// floating-point association order.
const RATIO_EPS: f64 = 1e-9;

/// Identifies one conformance workload in divergence messages.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable source, e.g. `fixture:paper-worked-example` or
    /// `proptest:boundary-lengths`.
    pub label: String,
    /// Seed that regenerates the workload (0 for committed fixtures).
    pub seed: u64,
    /// Series length.
    pub n: usize,
    /// Alphabet size.
    pub sigma: usize,
    /// Periodicity threshold.
    pub psi: f64,
    /// Largest period examined.
    pub max_period: usize,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (seed={}, n={}, sigma={}, psi={}, max_period={})",
            self.label, self.seed, self.n, self.sigma, self.psi, self.max_period
        )
    }
}

/// One observed disagreement between a production path and the oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The workload the disagreement appeared on.
    pub workload: String,
    /// The production path that disagreed (e.g. `detect/spectrum/prune`).
    pub path: String,
    /// What differed, with both sides' values.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CONFORMANCE DIVERGENCE\n  workload: {}\n  path:     {}\n  detail:   {}",
            self.workload, self.path, self.detail
        )
    }
}

impl Divergence {
    fn new(workload: &Workload, path: &str, detail: String) -> Divergence {
        Divergence {
            workload: workload.to_string(),
            path: path.to_string(),
            detail,
        }
    }
}

fn describe(sp: &OraclePeriodicity) -> String {
    format!(
        "(symbol={}, period={}, phase={}, f2={}, denom={}, conf={:.6})",
        sp.symbol.index(),
        sp.period,
        sp.phase,
        sp.f2,
        sp.denominator,
        sp.confidence
    )
}

/// Compares two Def.-1 answers (both sorted by `(period, phase, symbol)`).
/// The oracle's answer is `expected`; the production path's, `got`.
pub fn diff_periodicities(
    workload: &Workload,
    path: &str,
    expected: &[OraclePeriodicity],
    got: &[OraclePeriodicity],
) -> Option<Divergence> {
    let key = |sp: &OraclePeriodicity| (sp.period, sp.phase, sp.symbol);
    let mut e = expected.iter().peekable();
    let mut g = got.iter().peekable();
    loop {
        match (e.peek(), g.peek()) {
            (None, None) => return None,
            (Some(sp), None) => {
                return Some(Divergence::new(
                    workload,
                    path,
                    format!("missing periodicity {}", describe(sp)),
                ));
            }
            (None, Some(sp)) => {
                return Some(Divergence::new(
                    workload,
                    path,
                    format!("spurious periodicity {}", describe(sp)),
                ));
            }
            (Some(esp), Some(gsp)) => match key(esp).cmp(&key(gsp)) {
                std::cmp::Ordering::Less => {
                    return Some(Divergence::new(
                        workload,
                        path,
                        format!("missing periodicity {}", describe(esp)),
                    ));
                }
                std::cmp::Ordering::Greater => {
                    return Some(Divergence::new(
                        workload,
                        path,
                        format!("spurious periodicity {}", describe(gsp)),
                    ));
                }
                std::cmp::Ordering::Equal => {
                    if esp.f2 != gsp.f2
                        || esp.denominator != gsp.denominator
                        || (esp.confidence - gsp.confidence).abs() > RATIO_EPS
                    {
                        return Some(Divergence::new(
                            workload,
                            path,
                            format!("expected {} but got {}", describe(esp), describe(gsp)),
                        ));
                    }
                    e.next();
                    g.next();
                }
            },
        }
    }
}

/// Compares two frequent-pattern answers as canonical sets: both sides are
/// sorted by `(period, slots)` before element-wise comparison.
pub fn diff_patterns(
    workload: &Workload,
    path: &str,
    expected: &[(OraclePattern, OracleSupport)],
    got: &[(OraclePattern, OracleSupport)],
) -> Option<Divergence> {
    let mut expected: Vec<_> = expected.to_vec();
    let mut got: Vec<_> = got.to_vec();
    expected.sort_by(|a, b| a.0.cmp(&b.0));
    got.sort_by(|a, b| a.0.cmp(&b.0));
    let show = |pattern: &OraclePattern, s: &OracleSupport| {
        let slots: Vec<String> = pattern
            .slots
            .iter()
            .map(|slot| match slot {
                Some(sym) => sym.index().to_string(),
                None => "*".to_string(),
            })
            .collect();
        format!(
            "period={} slots=[{}] count={} denom={}",
            pattern.period,
            slots.join(","),
            s.count,
            s.denominator
        )
    };
    let mut e = expected.iter().peekable();
    let mut g = got.iter().peekable();
    loop {
        match (e.peek(), g.peek()) {
            (None, None) => return None,
            (Some((pat, sup)), None) => {
                return Some(Divergence::new(
                    workload,
                    path,
                    format!("missing pattern {}", show(pat, sup)),
                ));
            }
            (None, Some((pat, sup))) => {
                return Some(Divergence::new(
                    workload,
                    path,
                    format!("spurious pattern {}", show(pat, sup)),
                ));
            }
            (Some((epat, esup)), Some((gpat, gsup))) => match epat.cmp(gpat) {
                std::cmp::Ordering::Less => {
                    return Some(Divergence::new(
                        workload,
                        path,
                        format!("missing pattern {}", show(epat, esup)),
                    ));
                }
                std::cmp::Ordering::Greater => {
                    return Some(Divergence::new(
                        workload,
                        path,
                        format!("spurious pattern {}", show(gpat, gsup)),
                    ));
                }
                std::cmp::Ordering::Equal => {
                    if esup.count != gsup.count
                        || esup.denominator != gsup.denominator
                        || (esup.support - gsup.support).abs() > RATIO_EPS
                    {
                        return Some(Divergence::new(
                            workload,
                            path,
                            format!(
                                "pattern support mismatch: expected {} but got {}",
                                show(epat, esup),
                                show(gpat, gsup)
                            ),
                        ));
                    }
                    e.next();
                    g.next();
                }
            },
        }
    }
}

/// Compares two labelled count tables (spectra, online match counts, …)
/// entry by entry. Labels must align; the harness builds both sides from
/// the same iteration order.
pub fn diff_counts(
    workload: &Workload,
    path: &str,
    expected: &[(String, u64)],
    got: &[(String, u64)],
) -> Option<Divergence> {
    if expected.len() != got.len() {
        return Some(Divergence::new(
            workload,
            path,
            format!(
                "count table length mismatch: expected {} entries, got {}",
                expected.len(),
                got.len()
            ),
        ));
    }
    for ((elabel, ev), (glabel, gv)) in expected.iter().zip(got) {
        if elabel != glabel {
            return Some(Divergence::new(
                workload,
                path,
                format!("count table misaligned: expected label {elabel:?}, got {glabel:?}"),
            ));
        }
        if ev != gv {
            return Some(Divergence::new(
                workload,
                path,
                format!("{elabel}: expected {ev}, got {gv}"),
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use periodica_series::SymbolId;

    fn workload() -> Workload {
        Workload {
            label: "unit".into(),
            seed: 7,
            n: 10,
            sigma: 3,
            psi: 0.5,
            max_period: 5,
        }
    }

    fn sp(period: usize, phase: usize, symbol: usize, f2: u64, denom: u64) -> OraclePeriodicity {
        OraclePeriodicity {
            symbol: SymbolId::from_index(symbol),
            period,
            phase,
            f2,
            denominator: denom,
            confidence: f2 as f64 / denom as f64,
        }
    }

    #[test]
    fn equal_answers_have_no_divergence() {
        let a = vec![sp(3, 0, 0, 2, 3), sp(3, 1, 1, 2, 2)];
        assert!(diff_periodicities(&workload(), "p", &a, &a.clone()).is_none());
    }

    #[test]
    fn missing_spurious_and_mismatched_entries_are_named() {
        let expected = vec![sp(3, 0, 0, 2, 3)];
        let spurious = vec![sp(3, 0, 0, 2, 3), sp(4, 0, 0, 3, 3)];
        let d = diff_periodicities(&workload(), "p", &expected, &spurious).expect("divergence");
        assert!(d.detail.contains("spurious"), "{d}");
        let d = diff_periodicities(&workload(), "p", &spurious, &expected).expect("divergence");
        assert!(d.detail.contains("missing"), "{d}");
        let wrong_count = vec![sp(3, 0, 0, 1, 3)];
        let d = diff_periodicities(&workload(), "p", &expected, &wrong_count).expect("divergence");
        assert!(d.detail.contains("expected"), "{d}");
    }

    #[test]
    fn pattern_diff_is_order_insensitive() {
        let a = OraclePattern::new(3, &[(0, SymbolId::from_index(0))]);
        let b = OraclePattern::new(3, &[(1, SymbolId::from_index(1))]);
        let s = OracleSupport {
            count: 2,
            denominator: 3,
            support: 2.0 / 3.0,
        };
        let fwd = vec![(a.clone(), s), (b.clone(), s)];
        let rev = vec![(b, s), (a, s)];
        assert!(diff_patterns(&workload(), "p", &fwd, &rev).is_none());
    }

    #[test]
    fn count_tables_report_the_first_differing_label() {
        let e = vec![("a@3".to_string(), 2u64), ("b@3".to_string(), 2u64)];
        let mut g = e.clone();
        g[1].1 = 5;
        let d = diff_counts(&workload(), "online", &e, &g).expect("divergence");
        assert!(d.detail.contains("b@3"), "{d}");
        assert!(d.to_string().contains("CONFORMANCE DIVERGENCE"));
    }
}
