//! The golden-fixture model and its JSON encoding.
//!
//! A fixture freezes one workload — the input series, an exact-rational
//! threshold, the period range — together with the oracle's answer for it:
//! every Def.-1 periodicity and (when the candidate space fits the
//! enumeration cap) every frequent pattern with its support. The committed
//! corpus lives in `tests/fixtures/*.json`; `tests/conformance.rs` replays
//! each file through every production path, and the `gen_fixtures` example
//! regenerates the corpus when definitions legitimately change.
//!
//! The threshold is stored as a rational `psi_num / psi_den` rather than a
//! decimal so the generator and the harness derive bit-identical `f64`
//! thresholds, keeping exact-threshold fixtures exact.
//!
//! The encoding is a restricted JSON subset — objects, arrays, strings,
//! unsigned integers, and `null` — parsed and written by this module so the
//! oracle stays free of production crates (see the crate docs). Floats are
//! deliberately unrepresentable: everything stored is integral.

use std::sync::Arc;

use periodica_series::{Alphabet, SymbolId, SymbolSeries};

use crate::naive::{self, OraclePattern, OraclePeriodicity, OracleSupport};

/// One frozen workload with its oracle-computed expectations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fixture {
    /// Unique corpus name (also the file stem).
    pub name: String,
    /// What axis of the input space this fixture pins down.
    pub description: String,
    /// Symbol names, index = symbol id.
    pub alphabet: Vec<String>,
    /// The series as symbol ids.
    pub series: Vec<usize>,
    /// Threshold numerator.
    pub psi_num: u64,
    /// Threshold denominator.
    pub psi_den: u64,
    /// Smallest period examined.
    pub min_period: usize,
    /// Largest period examined.
    pub max_period: usize,
    /// Every Def.-1 periodicity at `psi`, as `(symbol, period, phase, f2,
    /// denominator)`, sorted by `(period, phase, symbol)`.
    pub periodicities: Vec<(usize, usize, usize, u64, u64)>,
    /// Frequent patterns at `psi`, as `(period, slots, count,
    /// denominator)`; `None` slots are don't-cares.
    pub patterns: Vec<(usize, Vec<Option<usize>>, u64, u64)>,
    /// Whether `patterns` is the *complete* frequent set (enumeration fit
    /// the cap). When false the harness only re-measures the listed
    /// patterns instead of comparing full sets.
    pub patterns_complete: bool,
}

impl Fixture {
    /// The threshold as `f64`, derived identically everywhere.
    pub fn psi(&self) -> f64 {
        self.psi_num as f64 / self.psi_den as f64
    }

    /// Rebuilds the input series.
    pub fn build_series(&self) -> Result<SymbolSeries, String> {
        let alphabet: Arc<Alphabet> = Alphabet::from_symbols(self.alphabet.iter().cloned())
            .map_err(|e| format!("fixture {}: bad alphabet: {e}", self.name))?;
        let ids: Vec<SymbolId> = self
            .series
            .iter()
            .map(|&i| SymbolId::from_index(i))
            .collect();
        SymbolSeries::from_ids(ids, alphabet)
            .map_err(|e| format!("fixture {}: bad series: {e}", self.name))
    }

    /// The expected periodicities in oracle vocabulary.
    pub fn expected_periodicities(&self) -> Vec<OraclePeriodicity> {
        self.periodicities
            .iter()
            .map(
                |&(symbol, period, phase, f2, denominator)| OraclePeriodicity {
                    symbol: SymbolId::from_index(symbol),
                    period,
                    phase,
                    f2,
                    denominator,
                    confidence: f2 as f64 / denominator as f64,
                },
            )
            .collect()
    }

    /// The expected patterns in oracle vocabulary.
    pub fn expected_patterns(&self) -> Vec<(OraclePattern, OracleSupport)> {
        self.patterns
            .iter()
            .map(|(period, slots, count, denominator)| {
                let pattern = OraclePattern {
                    period: *period,
                    slots: slots.iter().map(|s| s.map(SymbolId::from_index)).collect(),
                };
                let support = OracleSupport {
                    count: *count,
                    denominator: *denominator,
                    support: if *denominator == 0 {
                        0.0
                    } else {
                        *count as f64 / *denominator as f64
                    },
                };
                (pattern, support)
            })
            .collect()
    }

    /// Computes a fixture's expectations from scratch with the oracle.
    ///
    /// `pattern_cap` bounds the per-period candidate space; if enumeration
    /// exceeds it, the fixture records no patterns and marks itself
    /// incomplete.
    #[allow(clippy::too_many_arguments)] // a constructor mirroring the JSON field order
    pub fn from_series(
        name: &str,
        description: &str,
        series: &SymbolSeries,
        psi_num: u64,
        psi_den: u64,
        min_period: usize,
        max_period: usize,
        pattern_cap: usize,
    ) -> Fixture {
        let psi = psi_num as f64 / psi_den as f64;
        let detected = naive::symbol_periodicities(series, psi, min_period, Some(max_period));
        let periodicities = detected
            .iter()
            .map(|sp| {
                (
                    sp.symbol.index(),
                    sp.period,
                    sp.phase,
                    sp.f2,
                    sp.denominator,
                )
            })
            .collect();
        let (patterns, patterns_complete) = match naive::frequent_patterns(
            series,
            psi,
            min_period,
            Some(max_period),
            pattern_cap,
        ) {
            Ok(frequent) => (
                frequent
                    .iter()
                    .map(|(pattern, support)| {
                        (
                            pattern.period,
                            pattern.slots.iter().map(|s| s.map(|x| x.index())).collect(),
                            support.count,
                            support.denominator,
                        )
                    })
                    .collect(),
                true,
            ),
            Err(_) => (Vec::new(), false),
        };
        Fixture {
            name: name.to_string(),
            description: description.to_string(),
            alphabet: series.alphabet().names().to_vec(),
            series: series.symbols().iter().map(|s| s.index()).collect(),
            psi_num,
            psi_den,
            min_period,
            max_period,
            periodicities,
            patterns,
            patterns_complete,
        }
    }

    /// Serializes the fixture as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", quote(&self.name)));
        out.push_str(&format!(
            "  \"description\": {},\n",
            quote(&self.description)
        ));
        let names: Vec<String> = self.alphabet.iter().map(|s| quote(s)).collect();
        out.push_str(&format!("  \"alphabet\": [{}],\n", names.join(", ")));
        let ids: Vec<String> = self.series.iter().map(|i| i.to_string()).collect();
        out.push_str(&format!("  \"series\": [{}],\n", ids.join(", ")));
        out.push_str(&format!("  \"psi_num\": {},\n", self.psi_num));
        out.push_str(&format!("  \"psi_den\": {},\n", self.psi_den));
        out.push_str(&format!("  \"min_period\": {},\n", self.min_period));
        out.push_str(&format!("  \"max_period\": {},\n", self.max_period));
        out.push_str("  \"periodicities\": [");
        for (i, (symbol, period, phase, f2, denominator)) in self.periodicities.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"symbol\": {symbol}, \"period\": {period}, \"phase\": {phase}, \
                 \"f2\": {f2}, \"denominator\": {denominator}}}"
            ));
        }
        out.push_str(if self.periodicities.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"patterns\": [");
        for (i, (period, slots, count, denominator)) in self.patterns.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let slots: Vec<String> = slots
                .iter()
                .map(|s| match s {
                    Some(id) => id.to_string(),
                    None => "null".to_string(),
                })
                .collect();
            out.push_str(&format!(
                "    {{\"period\": {period}, \"slots\": [{}], \"count\": {count}, \
                 \"denominator\": {denominator}}}",
                slots.join(", ")
            ));
        }
        out.push_str(if self.patterns.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str(&format!(
            "  \"patterns_complete\": {}\n",
            self.patterns_complete
        ));
        out.push_str("}\n");
        out
    }

    /// Parses a fixture from its JSON encoding.
    pub fn from_json(text: &str) -> Result<Fixture, String> {
        let value = JsonParser::parse(text)?;
        let obj = value.object("fixture")?;
        let periodicities = obj
            .field("periodicities")?
            .array("periodicities")?
            .iter()
            .map(|entry| {
                let entry = entry.object("periodicity")?;
                Ok((
                    entry.field("symbol")?.int("symbol")? as usize,
                    entry.field("period")?.int("period")? as usize,
                    entry.field("phase")?.int("phase")? as usize,
                    entry.field("f2")?.int("f2")?,
                    entry.field("denominator")?.int("denominator")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let patterns = obj
            .field("patterns")?
            .array("patterns")?
            .iter()
            .map(|entry| {
                let entry = entry.object("pattern")?;
                let slots = entry
                    .field("slots")?
                    .array("slots")?
                    .iter()
                    .map(|slot| match slot {
                        Json::Null => Ok(None),
                        other => Ok(Some(other.int("slot")? as usize)),
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok((
                    entry.field("period")?.int("period")? as usize,
                    slots,
                    entry.field("count")?.int("count")?,
                    entry.field("denominator")?.int("denominator")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Fixture {
            name: obj.field("name")?.string("name")?,
            description: obj.field("description")?.string("description")?,
            alphabet: obj
                .field("alphabet")?
                .array("alphabet")?
                .iter()
                .map(|v| v.string("alphabet entry"))
                .collect::<Result<Vec<_>, String>>()?,
            series: obj
                .field("series")?
                .array("series")?
                .iter()
                .map(|v| v.int("series entry").map(|x| x as usize))
                .collect::<Result<Vec<_>, String>>()?,
            psi_num: obj.field("psi_num")?.int("psi_num")?,
            psi_den: obj.field("psi_den")?.int("psi_den")?,
            min_period: obj.field("min_period")?.int("min_period")? as usize,
            max_period: obj.field("max_period")?.int("max_period")? as usize,
            periodicities,
            patterns,
            patterns_complete: obj.field("patterns_complete")?.bool("patterns_complete")?,
        })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The restricted JSON value space fixtures use.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(u64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn object(&self, what: &str) -> Result<ObjectView<'_>, String> {
        match self {
            Json::Object(fields) => Ok(ObjectView { fields }),
            other => Err(format!("{what}: expected object, found {other:?}")),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!("{what}: expected array, found {other:?}")),
        }
    }

    fn int(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Int(n) => Ok(*n),
            other => Err(format!("{what}: expected integer, found {other:?}")),
        }
    }

    fn string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("{what}: expected string, found {other:?}")),
        }
    }

    fn bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected boolean, found {other:?}")),
        }
    }
}

/// Field access over a `Json::Object` without re-matching at every call.
#[derive(Clone, Copy)]
struct ObjectView<'a> {
    fields: &'a [(String, Json)],
}

impl ObjectView<'_> {
    fn field(&self, name: &str) -> Result<&Json, String> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {name:?}"))
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut parser = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing data"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> String {
        format!("fixture json: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.int(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let b = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    out.push(match b {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            char::from_u32(hex).unwrap_or('\u{FFFD}')
                        }
                        _ => return Err(self.err("unknown escape")),
                    });
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn int(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are UTF-8")
            .parse::<u64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fixture {
        let alphabet = Alphabet::latin(3).expect("alphabet");
        let series = SymbolSeries::parse("abcabbabcb", &alphabet).expect("series");
        Fixture::from_series(
            "paper-worked-example",
            "paper Sect. 2.2 series",
            &series,
            2,
            3,
            1,
            5,
            1 << 16,
        )
    }

    #[test]
    fn round_trips_through_json() {
        let fixture = sample();
        let encoded = fixture.to_json();
        let decoded = Fixture::from_json(&encoded).expect("parse");
        assert_eq!(decoded, fixture);
        // Encoding is canonical: a second round trip is byte-identical.
        assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn expectations_reconstruct_into_oracle_types() {
        let fixture = sample();
        let series = fixture.build_series().expect("series");
        assert_eq!(series.len(), 10);
        let expected = fixture.expected_periodicities();
        let recomputed =
            naive::symbol_periodicities(&series, fixture.psi(), fixture.min_period, Some(5));
        assert_eq!(expected.len(), recomputed.len());
        assert!(fixture.patterns_complete);
        for (pattern, support) in fixture.expected_patterns() {
            assert_eq!(naive::pattern_support(&series, &pattern), support);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"name\": }",
            "{\"name\": \"x\"} extra",
            "{\"name\": -1}",
            "{\"name\": 1.5}",
        ] {
            assert!(Fixture::from_json(bad).is_err(), "accepted {bad:?}");
        }
        // Structurally valid JSON but missing fields is also an error.
        assert!(Fixture::from_json("{\"name\": \"x\"}").is_err());
    }
}
