//! # periodica-oracle
//!
//! A deliberately slow, deliberately obvious reference implementation of the
//! paper's definitions (Elfeky, Aref, Elmagarmid; EDBT 2004), used as the
//! ground truth for differential conformance testing — the same way FFTW
//! validates against a textbook DFT.
//!
//! Everything here is computed by literal definition: projections are
//! materialized as vectors, `F2` counts adjacent pairs in those vectors,
//! pattern support walks whole segments, and candidate enumeration builds
//! the full Cartesian product. No bit tricks, no NTT, no caching, no shared
//! state. Complexity is whatever the definitions cost (typically
//! O(n · max_p · sigma) and exponential for pattern enumeration), which is
//! fine: the oracle only ever runs on conformance-sized inputs.
//!
//! Two rules keep the oracle trustworthy:
//!
//! * **No production dependencies.** Only [`periodica_series`] types are
//!   used (the shared vocabulary of symbols and series); never
//!   `periodica-core` or `periodica-transform`, so a bug in an optimized
//!   path cannot leak into the reference answer.
//! * **No cleverness.** When a definition can be computed two ways, the
//!   oracle picks the one that reads like the paper. Reviewers should be
//!   able to check each function against the paper in isolation.
//!
//! The crate has three modules:
//!
//! * [`naive`] — the reference computations (projection, F2, Def.-1
//!   symbol periodicities, Def.-2/3 pattern support, candidate periods,
//!   full-enumeration frequent patterns, closure);
//! * [`diff`] — divergence reporting for differential harnesses: compare
//!   an oracle answer with a production answer and render the first
//!   mismatch with enough context to bisect;
//! * [`fixture`] — the golden-fixture model and its self-contained JSON
//!   encoding, used by `tests/fixtures/*.json` and the
//!   `gen_fixtures` example that regenerates them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diff;
pub mod fixture;
pub mod naive;

pub use diff::{Divergence, Workload};
pub use fixture::Fixture;
pub use naive::{
    candidate_periods, confidence, f2, frequent_patterns, lag_matches, pattern_support, projection,
    symbol_periodicities, OraclePattern, OraclePeriodicity, OracleSupport, EPS,
};
