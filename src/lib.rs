//! # periodica
//!
//! One-pass, convolution-based mining of **obscure periodic patterns** —
//! periodic patterns whose period is *discovered*, not supplied — in symbol
//! time series. A from-scratch Rust reproduction of:
//!
//! > Mohamed G. Elfeky, Walid G. Aref, Ahmed K. Elmagarmid.
//! > *Using Convolution to Mine Obscure Periodic Patterns in One Pass.*
//! > EDBT 2004.
//!
//! ## Quick start
//!
//! ```
//! use periodica::prelude::*;
//!
//! // The running example from the paper (Sect. 2): T = abcabbabcb.
//! let alphabet = Alphabet::latin(3)?;
//! let series = SymbolSeries::parse("abcabbabcb", &alphabet)?;
//!
//! let miner = ObscureMiner::builder().threshold(2.0 / 3.0).build();
//! let report = miner.mine(&series)?;
//!
//! // Symbol periodicities: a is periodic with period 3 at position 0
//! // (confidence 2/3); b with period 3 at position 1 (confidence 1).
//! for sp in &report.detection.periodicities {
//!     println!(
//!         "{} every {} @ {} (confidence {:.2})",
//!         alphabet.name(sp.symbol), sp.period, sp.phase, sp.confidence
//!     );
//! }
//!
//! // Periodic patterns, don't-cares rendered as '*': a**, *b*, ab*.
//! assert!(report.patterns.iter().any(|m| m.pattern.render(&alphabet) == "ab*"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`] (periodica-core) | the miner: mapping scheme, engines, detector, patterns |
//! | [`series`] (periodica-series) | alphabets, series, projections, discretizers, noise, generators |
//! | [`transform`] (periodica-transform) | from-scratch FFT / NTT / convolution / streaming correlation |
//! | [`baselines`] (periodica-baselines) | Indyk periodic trends, shift distance, Ma-Hellerstein, Berberidis |
//! | [`datagen`] (periodica-datagen) | Wal-Mart / CIMEG / event-log surrogates |
//! | [`obs`] (periodica-obs) | zero-cost-when-disabled telemetry: spans, counters, run reports |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use periodica_baselines as baselines;
pub use periodica_core as core;
pub use periodica_datagen as datagen;
pub use periodica_obs as obs;
pub use periodica_series as series;
pub use periodica_transform as transform;

/// The single-import surface for typical use.
pub mod prelude {
    pub use periodica_core::{
        mine_reader, period_confidence, DetectionResult, EngineKind, Error, EvictionPolicy,
        MinedPattern, MiningError, MiningReport, ObscureMiner, OneTouchMiner, OnlineDetector,
        Pattern, PatternMode, SessionBackend, SessionId, SessionManager, SessionSnapshot,
        ShardedSessionManager, SymbolPeriodicity,
    };
    pub use periodica_series::{Alphabet, SeriesBuilder, SeriesError, SymbolId, SymbolSeries};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_is_sufficient_for_streaming_sessions() {
        let alphabet = Alphabet::latin(4).expect("ok");
        let mut manager = SessionManager::builder(alphabet)
            .window(16)
            .threshold(0.9)
            .policy(EvictionPolicy {
                max_sessions: Some(8),
                max_resident_bytes: None,
            })
            .build();
        let id = SessionId::from("feed");
        let symbols: Vec<SymbolId> = (0..200).map(|i| SymbolId::from_index(i % 4)).collect();
        manager.ingest(&id, &symbols).expect("ingest");
        let candidates = manager.candidates(&id).expect("candidates");
        assert!(candidates.iter().any(|c| c.period == 4));
        let snapshot: SessionSnapshot = manager.snapshot(&id).expect("snapshot");
        assert_eq!(snapshot.consumed(), 200);
    }

    #[test]
    fn prelude_is_sufficient_for_the_basic_flow() {
        let alphabet = Alphabet::latin(3).expect("ok");
        let series = SymbolSeries::parse("abcabbabcb", &alphabet).expect("ok");
        let report = ObscureMiner::builder()
            .threshold(0.6)
            .engine(EngineKind::Bitset)
            .build()
            .mine(&series)
            .expect("ok");
        assert!(!report.detection.periodicities.is_empty());
    }
}
