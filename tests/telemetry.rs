//! Telemetry integration tests: counter correctness on known workloads and
//! the zero-cost-when-disabled overhead guard.
//!
//! The recorder registry is process-global, so every test that installs a
//! recorder (or asserts on global counters) serializes on
//! [`periodica::obs::test_guard`] and uses its own series length — the NTT
//! plan cache is process-wide and keyed by transform length.

use std::sync::Arc;
use std::time::{Duration, Instant};

use periodica::core::engine::SpectrumEngine;
use periodica::core::{
    mine_patterns_with_stats, DetectorConfig, MatchEngine, PatternMinerConfig, PatternMode,
    PeriodicityDetector,
};
use periodica::obs::{self, Counter, EventKind, Hist, MetricsRecorder};
use periodica::prelude::*;

fn series(text: &str, sigma: usize) -> SymbolSeries {
    let a = Alphabet::latin(sigma).expect("alphabet");
    SymbolSeries::parse(text, &a).expect("series")
}

fn planted(length: usize, period: usize) -> SymbolSeries {
    let a = Alphabet::latin(4).expect("alphabet");
    let ids: Vec<SymbolId> = (0..length)
        .map(|i| SymbolId::from_index(i % period % 4))
        .collect();
    SymbolSeries::from_ids(ids, a).expect("series")
}

/// Two spectrum runs over same-length series make identical plan requests;
/// the second run's requests are all cache hits.
#[test]
fn second_same_length_run_hits_the_plan_cache_exactly() {
    let _guard = obs::test_guard();
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());

    // Unique length in this process so earlier tests cannot have primed
    // other lengths into the per-run request count.
    let a = planted(1_537, 7);
    let b = planted(1_537, 11);
    let engine = SpectrumEngine::new();

    engine.match_spectrum(&a, a.len() / 2).expect("run 1");
    let hits_1 = recorder.counter(Counter::NttPlanCacheHit);
    let misses_1 = recorder.counter(Counter::NttPlanCacheMiss);
    let requests_per_run = hits_1 + misses_1;
    assert!(requests_per_run > 0, "spectrum run must request NTT plans");

    engine.match_spectrum(&b, b.len() / 2).expect("run 2");
    let hits_2 = recorder.counter(Counter::NttPlanCacheHit);
    let misses_2 = recorder.counter(Counter::NttPlanCacheMiss);

    obs::uninstall();
    // Run 2 allocated no new plan: every one of its requests hit.
    assert_eq!(misses_2, misses_1, "second run must not build plans");
    assert_eq!(
        hits_2 - hits_1,
        requests_per_run,
        "second run must make the same plan requests, all hits"
    );
}

/// The paper's Sect. 2 series at psi = 2/3: the full enumeration's candidate
/// flow, pinned exactly.
#[test]
fn paper_example_candidate_flow_is_exact() {
    let s = series("abcabbabcb", 3);
    let detection = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 2.0 / 3.0,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&s)
    .expect("detect");
    let config = PatternMinerConfig {
        min_support: 2.0 / 3.0,
        mode: PatternMode::EnumerateAll,
        ..Default::default()
    };
    let (patterns, stats) = mine_patterns_with_stats(&s, &detection, &config).expect("mine");

    // At psi = 2/3 only a@0 and b@1 are frequent period-3 seeds, so the
    // Apriori join produces exactly one candidate — ab* — which survives
    // both the subset prune and the support verification (Sect. 2's worked
    // example: ab* has confidence 2/3).
    assert_eq!(stats.candidates_generated, 1);
    assert_eq!(stats.pruned_apriori, 0);
    assert_eq!(stats.pruned_infrequent, 0);
    assert_eq!(stats.frequent as usize, patterns.len());
    assert_eq!(stats.closed_extensions_checked, 0);
}

/// The tiled paper series at a lower threshold exercises every counter:
/// joins, the subset prune, and support-verification pruning. The flow is
/// deterministic, so the totals are pinned exactly.
#[test]
fn tiled_paper_example_prunes_candidates_exactly() {
    let s = series(&"abcabbabcb".repeat(8), 3);
    let detection = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.4,
            max_period: Some(10),
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&s)
    .expect("detect");
    let config = PatternMinerConfig {
        min_support: 0.4,
        mode: PatternMode::EnumerateAll,
        ..Default::default()
    };
    let (patterns, stats) = mine_patterns_with_stats(&s, &detection, &config).expect("mine");
    assert_eq!(stats.candidates_generated, 1023);
    assert_eq!(stats.pruned_apriori, 0);
    assert_eq!(stats.pruned_infrequent, 8);
    assert_eq!(stats.frequent as usize, patterns.len());
    // Conservation: every join candidate is pruned or verified frequent;
    // the remainder of `frequent` is the 21 emitted singles.
    let joined_frequent =
        stats.candidates_generated - stats.pruned_apriori - stats.pruned_infrequent;
    assert_eq!(stats.frequent - joined_frequent, 21);
}

/// Same example, closed mode: extension checks happen, Apriori counters
/// stay zero, and the frequent total still equals the output size.
#[test]
fn paper_example_closed_mode_stats() {
    let s = series("abcabbabcb", 3);
    let detection = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 2.0 / 3.0,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    )
    .detect(&s)
    .expect("detect");
    let config = PatternMinerConfig {
        min_support: 2.0 / 3.0,
        mode: PatternMode::Closed,
        ..Default::default()
    };
    let (patterns, stats) = mine_patterns_with_stats(&s, &detection, &config).expect("mine");
    assert_eq!(stats.candidates_generated, 0);
    assert_eq!(stats.pruned_apriori, 0);
    assert_eq!(stats.pruned_infrequent, 0);
    assert_eq!(stats.frequent as usize, patterns.len());
    assert!(stats.closed_extensions_checked > 0);
}

/// Overhead guard: with no recorder installed the instrumented spectrum path
/// allocates no recorder state at all, and costs no more than the armed
/// path (generous 3x margin — wall-clock noise, not a benchmark).
#[test]
fn disabled_telemetry_allocates_nothing_and_stays_fast() {
    let _guard = obs::test_guard();
    obs::uninstall();

    let s = planted(100_000, 24);
    let engine = SpectrumEngine::new();
    let run = || {
        engine
            .match_spectrum(&s, 256)
            .expect("spectrum run")
            .matches(SymbolId::from_index(0), 24)
    };
    run(); // Warm the plan cache so neither timed pass builds plans.

    let allocations_before = obs::state_allocations();
    let best = |runs: usize, f: &dyn Fn() -> u64| -> Duration {
        (0..runs)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .min()
            .expect("at least one run")
    };
    let disabled = best(3, &run);
    assert_eq!(
        obs::state_allocations() - allocations_before,
        0,
        "disabled instrumentation must not allocate recorder state"
    );

    obs::install(Arc::new(MetricsRecorder::new()));
    let enabled = best(3, &run);
    obs::uninstall();

    assert!(
        disabled <= enabled * 3 + Duration::from_millis(20),
        "disabled path ({disabled:?}) should not cost more than the armed path ({enabled:?})"
    );
}

/// Same zero-cost contract for the histogram and flight-recorder hooks:
/// with no recorder installed, `duration`/`time_hist` allocate nothing and
/// `event` never even builds its target string; once a recorder is armed,
/// the identical call sites land in the histogram and the flight ring.
#[test]
fn disabled_duration_and_event_hooks_are_inert() {
    let _guard = obs::test_guard();
    obs::uninstall();

    let allocations_before = obs::state_allocations();
    let mut target_built = false;
    obs::duration(Hist::SessionIngestBatchNs, 1_234);
    {
        let _t = obs::time_hist(Hist::ShardQueueWaitNs);
    }
    obs::event(EventKind::SlowRequest, 7, || {
        target_built = true;
        "never".to_string()
    });
    assert!(
        !target_built,
        "disabled event hook must not evaluate the target closure"
    );
    assert_eq!(
        obs::state_allocations() - allocations_before,
        0,
        "disabled duration/event hooks must not allocate recorder state"
    );

    // Armed: the very same calls record.
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    obs::duration(Hist::SessionIngestBatchNs, 1_234);
    {
        let _t = obs::time_hist(Hist::ShardQueueWaitNs);
    }
    obs::event(EventKind::SlowRequest, 7, || "armed".to_string());
    obs::uninstall();

    assert_eq!(recorder.hist(Hist::SessionIngestBatchNs).count(), 1);
    assert_eq!(recorder.hist(Hist::SessionIngestBatchNs).sum(), 1_234);
    assert_eq!(
        recorder.hist(Hist::ShardQueueWaitNs).count(),
        1,
        "armed time_hist must record on drop"
    );
    let snapshot = recorder.flight().snapshot();
    assert_eq!(snapshot.dropped, 0);
    assert_eq!(snapshot.events.len(), 1);
    assert_eq!(snapshot.events[0].kind, EventKind::SlowRequest);
    assert_eq!(snapshot.events[0].target, "armed");
    assert_eq!(snapshot.events[0].value, 7);
}
