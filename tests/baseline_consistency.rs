//! Cross-checks between the miner and the baseline detectors.

use periodica::baselines::berberidis::{self, BerberidisConfig};
use periodica::baselines::indyk::{PeriodicTrends, PeriodicTrendsConfig};
use periodica::baselines::ma_hellerstein::{self, MaHellersteinConfig};
use periodica::baselines::shift_distance::{shift_distance_spectrum, symbol_values};
use periodica::prelude::*;
use periodica::series::generate::{PeriodicSeriesSpec, SymbolDistribution};
use periodica::series::noise::NoiseSpec;

fn workload(length: usize, period: usize, noise: f64, seed: u64) -> SymbolSeries {
    let g = PeriodicSeriesSpec {
        length,
        period,
        alphabet_size: 8,
        distribution: SymbolDistribution::Uniform,
    }
    .generate(seed)
    .expect("generate");
    NoiseSpec::replacement(noise)
        .expect("spec")
        .apply(&g.series, seed)
}

/// On a strong planted period, every detector that *can* see it does.
#[test]
fn all_detectors_agree_on_a_strong_period() {
    let period = 30;
    let series = workload(12_000, period, 0.1, 2);

    // Ours.
    let ours = ObscureMiner::builder()
        .threshold(0.6)
        .max_period(200)
        .mine_patterns(false)
        .build()
        .mine(&series)
        .expect("mine");
    assert!(ours.detection.detected_periods().contains(&period));

    // Periodic trends: the period must rank near the top.
    let trends = PeriodicTrends::new(PeriodicTrendsConfig {
        sketches: Some(48),
        ..Default::default()
    });
    let report = trends.analyze(&series, 200);
    assert!(
        report.confidence_of(period) > 0.9,
        "{}",
        report.confidence_of(period)
    );

    // Exact shift distance: a clear local minimum at the period.
    let values = symbol_values(&series);
    let d = shift_distance_spectrum(&values, 200);
    assert!(d[period] < d[period - 1] && d[period] < d[period + 1]);
    assert!(d[period] < 0.5 * d[period / 2]);

    // Ma-Hellerstein: with a planted pattern, some symbol recurs at
    // adjacent distance = period often enough to flag it.
    let mh = ma_hellerstein::find_periods(&series, &MaHellersteinConfig::default());
    assert!(mh.iter().any(|c| c.period == period), "{mh:?}");

    // Berberidis: filter + confirm finds it too (two passes).
    let cands = berberidis::candidate_periods(
        &series,
        &BerberidisConfig {
            max_period: Some(200),
            ..Default::default()
        },
    )
    .expect("filter");
    let confirmed = berberidis::confirm_candidates(&series, &cands, 0.6);
    assert!(confirmed.iter().any(|(c, _, _)| c.period == period));
}

/// The sketch estimator tracks the exact spectrum it approximates.
#[test]
fn indyk_sketches_track_exact_distances_on_real_shapes() {
    let series = workload(4_096, 25, 0.2, 5);
    let values = symbol_values(&series);
    let exact = shift_distance_spectrum(&values, 2_000);
    let est = PeriodicTrends::new(PeriodicTrendsConfig {
        sketches: Some(64),
        ..Default::default()
    })
    .distance_spectrum(&values, 2_000);
    let mut checked = 0;
    for p in (10..2_000).step_by(37) {
        if exact[p] > 1_000.0 {
            let rel = (est[p] - exact[p]).abs() / exact[p];
            assert!(rel < 0.5, "p={p} rel={rel}");
            checked += 1;
        }
    }
    assert!(checked > 20);
}

/// Where the baselines structurally fail, we don't: the non-adjacent
/// recurrence pattern (paper Sect. 1.1).
#[test]
fn only_our_detector_sees_non_adjacent_periods() {
    // 'a' at offsets {0, 4, 5, 7} of every 10-block: period 5 at phase 0,
    // adjacent gaps forever {4, 1, 2, 3}.
    let alphabet = Alphabet::latin(2).expect("alphabet");
    let motif: String = (0..10)
        .map(|i| {
            if [0usize, 4, 5, 7].contains(&i) {
                'a'
            } else {
                'b'
            }
        })
        .collect();
    let series = SymbolSeries::parse(&motif.repeat(300), &alphabet).expect("series");
    let a = alphabet.lookup("a").expect("a");

    let mut gaps = ma_hellerstein::adjacent_distances(&series, a);
    gaps.sort_unstable();
    gaps.dedup();
    assert_eq!(gaps, vec![1, 2, 3, 4]); // 5 is structurally invisible

    let ours = ObscureMiner::builder()
        .threshold(0.95)
        .max_period(20)
        .mine_patterns(false)
        .build()
        .mine(&series)
        .expect("mine");
    assert!(ours
        .detection
        .periodicities
        .iter()
        .any(|sp| sp.period == 5 && sp.phase == 0 && sp.symbol == a));
}

/// Complexity sanity: the one-pass detection phase beats the sketch
/// baseline on identical input (the Fig. 5 relationship), measured
/// coarsely to stay robust on shared CI machines.
#[test]
fn detection_phase_is_faster_than_periodic_trends() {
    use std::time::Instant;
    let series = workload(1 << 16, 24, 0.2, 9);
    let detector = periodica::core::PeriodicityDetector::new(
        periodica::core::DetectorConfig {
            threshold: 0.6,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    );
    let start = Instant::now();
    let candidates = detector.candidate_periods(&series).expect("candidates");
    let ours = start.elapsed();
    assert!(!candidates.is_empty());

    let values = symbol_values(&series);
    let trends = PeriodicTrends::new(PeriodicTrendsConfig::default());
    let start = Instant::now();
    let spectrum = trends.distance_spectrum(&values, series.len() / 2);
    let theirs = start.elapsed();
    assert!(!spectrum.is_empty());

    assert!(
        ours < theirs,
        "expected one-pass detection ({ours:?}) to beat sketches ({theirs:?})"
    );
}
