//! Out-of-core pipeline properties: file round trips and chunk invariance.
//!
//! The deterministic legs live in `tests/conformance.rs` (the fixture-backed
//! bit-identity sweep) and `tests/robustness.rs` (corrupt files). This file
//! holds the shrinking property tests the ISSUE asks for:
//!
//! * writing any series to disk and reading it back through
//!   [`FileSeriesReader`] — in arbitrary chunk sizes, binary and text —
//!   reassembles the original exactly;
//! * detection and mining output is invariant to the streaming chunk size
//!   and to the memory budget (the budget decides *when* bytes are
//!   resident, never *what* is computed);
//! * a series much larger than the budget mines in one sequential pass with
//!   the resident high-water mark under the budget.
//!
//! Failures persist to `proptest-regressions/outofcore.txt` and re-run
//! first forever after.

use std::path::PathBuf;

use periodica_core::{MinerConfig, ObscureMiner, OutOfCoreMiner};
use periodica_series::source::{write_series_file, write_text_series_file};
use periodica_series::{
    Alphabet, FileSeriesReader, MemorySource, SeriesFileWriter, SeriesSource, SymbolId,
    SymbolSeries,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("periodica-outofcore-{}-{name}", std::process::id()))
}

fn series_from(ids: &[usize], sigma: usize) -> SymbolSeries {
    let alphabet = Alphabet::latin(sigma.clamp(1, 26)).expect("alphabet");
    let ids: Vec<SymbolId> = ids
        .iter()
        .map(|&i| SymbolId::from_index(i % alphabet.len()))
        .collect();
    SymbolSeries::from_ids(ids, alphabet).expect("series")
}

/// Reads a file back through `read_at` in the given (cycling) chunk sizes.
fn reassemble(reader: &mut FileSeriesReader, chunks: &[usize]) -> Vec<SymbolId> {
    let mut out = Vec::with_capacity(reader.len());
    let mut buf = Vec::new();
    let mut at = 0usize;
    let mut turn = 0usize;
    while at < reader.len() {
        let want = chunks[turn % chunks.len()].max(1);
        let got = reader
            .read_at(at, want.min(reader.len() - at), &mut buf)
            .expect("read_at");
        assert!(got > 0, "reader stalled at {at}");
        out.extend_from_slice(&buf[..got]);
        at += got;
        turn += 1;
    }
    out
}

mod properties {
    use super::*;
    use proptest::collection;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Binary and text round trips reassemble the original series for
        /// arbitrary content and arbitrary read-chunk schedules.
        #[test]
        fn file_round_trip_reassembles_the_series(
            ids in collection::vec(0usize..9, 1..400),
            sigma in 1usize..9,
            chunks in collection::vec(1usize..97, 1..6),
            case in 0u32..1_000_000,
        ) {
            let series = series_from(&ids, sigma);
            let bin = tmp(&format!("prop-bin-{case}"));
            let txt = tmp(&format!("prop-txt-{case}"));
            write_series_file(&bin, &series).expect("write binary");
            write_text_series_file(&txt, &series).expect("write text");

            for path in [&bin, &txt] {
                let mut reader = FileSeriesReader::open(path).expect("open");
                prop_assert_eq!(reader.len(), series.len());
                prop_assert_eq!(reader.alphabet().len(), series.sigma());
                let got = reassemble(&mut reader, &chunks);
                prop_assert_eq!(got.as_slice(), series.symbols());
                prop_assert!(reader.checksum_verified() || path == &txt);
                // And the convenience materializer agrees.
                let mut reader = FileSeriesReader::open(path).expect("open");
                let whole = reader.read_all().expect("read_all");
                prop_assert_eq!(whole.symbols(), series.symbols());
            }
            std::fs::remove_file(&bin).ok();
            std::fs::remove_file(&txt).ok();
        }

        /// Detections and patterns are invariant to the streaming chunk
        /// size and to the byte budget: only residency timing may change.
        #[test]
        fn mining_is_invariant_to_chunk_size_and_budget(
            period in 2usize..14,
            reps in 3usize..9,
            residue in 0usize..4,
            noise in collection::vec((0usize..10_000, 0usize..5), 0..10),
            chunk_a in 1usize..50,
            chunk_b in 50usize..5_000,
            budget in 1usize..(1 << 22),
        ) {
            let n = period * reps + residue;
            let mut ids: Vec<usize> = (0..n).map(|i| i % period % 5).collect();
            for &(at, sym) in &noise {
                let at = at % n;
                ids[at] = sym;
            }
            let series = series_from(&ids, 5);
            let config = MinerConfig {
                threshold: 0.5,
                max_period: Some((n / 2).max(1)),
                ..MinerConfig::default()
            };
            let reference = ObscureMiner::from_config(config.clone())
                .mine(&series)
                .expect("in-memory mine");
            for chunk in [chunk_a, chunk_b] {
                let (report, _) = OutOfCoreMiner::new(config.clone(), budget)
                    .expect("miner")
                    .with_chunk_size(chunk)
                    .mine_with_peak(&mut MemorySource::new(&series))
                    .expect("streamed mine");
                prop_assert_eq!(
                    &reference.detection.periodicities,
                    &report.detection.periodicities,
                    "detections changed at chunk {}", chunk
                );
                prop_assert_eq!(
                    &reference.patterns, &report.patterns,
                    "patterns changed at chunk {}", chunk
                );
            }
            // The planner path (no override): the budget may pick any chunk,
            // the answer must not move.
            let report = OutOfCoreMiner::new(config, budget)
                .expect("miner")
                .mine(&mut MemorySource::new(&series))
                .expect("budgeted mine");
            prop_assert_eq!(
                &reference.detection.periodicities,
                &report.detection.periodicities
            );
            prop_assert_eq!(&reference.patterns, &report.patterns);
        }
    }
}

/// The acceptance shape, scaled to test time: a file ~16x the budget mines
/// in one sequential pass with the resident high-water mark under budget.
#[test]
fn resident_peak_stays_under_a_small_budget() {
    let path = tmp("budget");
    let alphabet = Alphabet::latin(6).expect("alphabet");
    let n = 1usize << 19; // 512 Ki symbols -> ~1 MiB on disk (u16 payload)
    let budget = 64 << 10; // 64 KiB
    {
        let mut writer = SeriesFileWriter::create(&path, &alphabet, n).expect("create writer");
        // A planted period-48 template with a deterministic blip every 97.
        for i in 0..n {
            let id = if i % 97 == 3 { 5 } else { i % 48 % 5 };
            writer.push(SymbolId::from_index(id)).expect("push");
        }
        writer.finish().expect("finish");
    }
    let file_bytes = std::fs::metadata(&path).expect("metadata").len() as usize;
    assert!(
        file_bytes >= 8 * budget,
        "file ({file_bytes} B) should dwarf the budget ({budget} B)"
    );

    let config = MinerConfig {
        threshold: 0.6,
        max_period: Some(64),
        mine_patterns: false, // pattern rows are output-sensitive; CI smoke
        // runs the same shape with --no-patterns
        ..MinerConfig::default()
    };
    let mut reader = FileSeriesReader::open(&path).expect("open");
    let (report, peak) = OutOfCoreMiner::new(config, budget)
        .expect("miner")
        .mine_with_peak(&mut reader)
        .expect("mine");
    assert!(
        peak < budget,
        "resident peak {peak} B exceeded the {budget} B budget"
    );
    assert!(
        reader.checksum_verified(),
        "one sequential pass should verify"
    );
    assert!(
        report
            .detection
            .periodicities
            .iter()
            .any(|sp| sp.period == 48),
        "planted period 48 not detected"
    );
    std::fs::remove_file(&path).ok();
}
