//! The paper's real-data findings, reproduced on the surrogates.

use periodica::datagen::{EventLogConfig, PowerConfig, RetailConfig};
use periodica::prelude::*;

/// Table 1 / Sect. 4.4, Wal-Mart: "a period of 24 hours is detected when
/// the periodicity threshold is 70% or less", plus the weekly 168 and the
/// daylight-saving artifact among the detected periods.
#[test]
fn retail_period_findings() {
    let series = RetailConfig::default().generate_series().expect("generate");
    let detect = |threshold: f64| {
        ObscureMiner::builder()
            .threshold(threshold)
            .max_period(4_200)
            .mine_patterns(false)
            .build()
            .mine(&series)
            .expect("mine")
            .detection
            .detected_periods()
    };
    let at70 = detect(0.7);
    assert!(at70.contains(&24), "24 missing at psi=0.7");
    let at50 = detect(0.5);
    assert!(at50.contains(&24));
    assert!(at50.contains(&168), "weekly cycle missing at psi=0.5");
    assert!(
        at50.contains(&(24 * 165 + 1)),
        "daylight-saving artifact missing"
    );
    // Monotonicity: lower thresholds superset higher ones.
    for p in &at70 {
        assert!(at50.contains(p));
    }
}

/// Table 1, CIMEG: "the period of 7 days is detected when the threshold is
/// 60% or less. Other clear periods are those that are multiples of 7."
#[test]
fn power_period_findings() {
    let series = PowerConfig::default().generate_series().expect("generate");
    let report = ObscureMiner::builder()
        .threshold(0.6)
        .max_period(180)
        .mine_patterns(false)
        .build()
        .mine(&series)
        .expect("mine");
    let periods = report.detection.detected_periods();
    assert!(periods.contains(&7), "{periods:?}");
    let multiples = periods.iter().filter(|&&p| p % 7 == 0).count();
    assert!(
        multiples >= 3,
        "expected several multiples of 7: {periods:?}"
    );
}

/// Table 2 semantics: single-symbol patterns at the expected periods read
/// as (symbol, position) pairs, nested across thresholds.
#[test]
fn single_symbol_patterns_nest_across_thresholds() {
    let series = RetailConfig::default().generate_series().expect("generate");
    let singles = |threshold: f64| -> Vec<(SymbolId, usize)> {
        ObscureMiner::builder()
            .threshold(threshold)
            .min_period(24)
            .max_period(24)
            .mine_patterns(false)
            .build()
            .mine(&series)
            .expect("mine")
            .detection
            .at_period(24)
            .iter()
            .map(|sp| (sp.symbol, sp.phase))
            .collect()
    };
    let mut previous = singles(1.0);
    for pct in [90, 80, 70, 60, 50, 40, 30] {
        let current = singles(pct as f64 / 100.0);
        for pair in &previous {
            assert!(current.contains(pair), "threshold {pct}: lost {pair:?}");
        }
        previous = current;
    }
    assert!(!previous.is_empty());
}

/// Table 3 shape: multi-symbol patterns at period 24 and psi = 35% exist,
/// are closed, and their supports are consistent re-measurements.
#[test]
fn retail_multi_symbol_patterns_at_35_percent() {
    let series = RetailConfig::default().generate_series().expect("generate");
    let report = ObscureMiner::builder()
        .threshold(0.35)
        .min_period(24)
        .max_period(24)
        .build()
        .mine(&series)
        .expect("mine");
    let multis: Vec<&MinedPattern> = report
        .patterns
        .iter()
        .filter(|m| m.pattern.cardinality() >= 2)
        .collect();
    assert!(!multis.is_empty(), "no multi-symbol patterns at psi=0.35");
    for m in multis {
        assert!(m.support.support + 1e-9 >= 0.35);
        let direct = periodica::core::pattern_support(&series, &m.pattern);
        assert_eq!(direct.count, m.support.count, "{:?}", m.pattern);
    }
}

/// The event-log scenario end to end: both heartbeats surface with phase
/// and period intact; background symbols produce no high-confidence
/// periodicities at small periods.
#[test]
fn event_log_heartbeats_are_isolated() {
    let config = EventLogConfig::default();
    let series = config.generate().expect("generate");
    let report = ObscureMiner::builder()
        .threshold(0.9)
        .max_period(350)
        .mine_patterns(false)
        .build()
        .mine(&series)
        .expect("mine");
    assert!(report
        .detection
        .periodicities
        .iter()
        .any(|sp| sp.period == 60 && sp.phase == 7 && sp.symbol == SymbolId(5)));
    assert!(report
        .detection
        .periodicities
        .iter()
        .any(|sp| sp.period == 300 && sp.phase == 120 && sp.symbol == SymbolId(4)));
    // No non-heartbeat symbol reaches psi=0.9 at small periods.
    for sp in &report.detection.periodicities {
        if sp.period < 50 {
            assert!(
                sp.symbol == SymbolId(5) || sp.symbol == SymbolId(4),
                "spurious {sp:?}"
            );
        }
    }
}
