//! Property tests for the lock-free log-bucketed [`Histogram`]: merge is a
//! commutative monoid over bucket vectors, quantile estimates respect the
//! documented `RELATIVE_ERROR` bound against an exact nearest-rank oracle,
//! and concurrent recording is indistinguishable from a sequential replay.

use periodica::obs::Histogram;
use proptest::prelude::*;

/// Value strategy spanning the exact range (< 64), several octaves of the
/// log-bucketed range, and the nanosecond magnitudes the serving path
/// actually records.
fn values() -> impl Strategy<Value = Vec<u64>> {
    collection::vec(
        sample::select(vec![0u64, 1, 63, 64, 65])
            .boxed()
            .prop_flat_map(|small| {
                (0u64..4_000_000_000).prop_map(move |big| if big % 3 == 0 { small } else { big })
            }),
        1..200,
    )
}

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Full observable state of a histogram, for equality assertions.
fn state(h: &Histogram) -> (Vec<u64>, u64, u64, u64, u64) {
    (h.counts(), h.count(), h.sum(), h.min(), h.max())
}

/// Exact nearest-rank percentile over the raw values.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// merge(a, b) == merge(b, a), and folding three histograms is
    /// independent of grouping: the merged state is a function of the
    /// multiset of recorded values only.
    #[test]
    fn merge_is_commutative_and_associative(
        a in values(),
        b in values(),
        c in values(),
    ) {
        let ab = hist_of(&a);
        ab.merge_from(&hist_of(&b));
        let ba = hist_of(&b);
        ba.merge_from(&hist_of(&a));
        prop_assert_eq!(state(&ab), state(&ba));

        // (a + b) + c versus a + (b + c).
        let left = hist_of(&a);
        left.merge_from(&hist_of(&b));
        left.merge_from(&hist_of(&c));
        let bc = hist_of(&b);
        bc.merge_from(&hist_of(&c));
        let right = hist_of(&a);
        right.merge_from(&bc);
        prop_assert_eq!(state(&left), state(&right));
    }

    /// Recording a permutation of the same values, or the concatenation in
    /// any split, yields the identical histogram.
    #[test]
    fn merge_equals_recording_the_concatenation(
        a in values(),
        b in values(),
    ) {
        let merged = hist_of(&a);
        merged.merge_from(&hist_of(&b));
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.reverse();
        prop_assert_eq!(state(&merged), state(&hist_of(&all)));
    }

    /// Every quantile estimate lands within `RELATIVE_ERROR` of the exact
    /// nearest-rank value (+1 for the sub-64 integer-midpoint rounding).
    #[test]
    fn quantiles_respect_the_relative_error_bound(vals in values()) {
        let h = hist_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let tolerance = (exact as f64 * Histogram::RELATIVE_ERROR) as u64 + 1;
            prop_assert!(
                est.abs_diff(exact) <= tolerance,
                "q={}: estimated {} vs exact {} (tolerance {})",
                q, est, exact, tolerance
            );
        }
    }

    /// Racing writers lose nothing: recording the values from four scoped
    /// threads produces the same state as one sequential replay.
    #[test]
    fn concurrent_recording_matches_sequential_replay(vals in values()) {
        let concurrent = Histogram::new();
        let shared = &concurrent;
        std::thread::scope(|scope| {
            for chunk in vals.chunks(vals.len().div_ceil(4)) {
                scope.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });
        prop_assert_eq!(state(&concurrent), state(&hist_of(&vals)));
    }
}
