//! End-to-end exercise of the `periodica` command-line tool through its
//! library entry point (no subprocesses: deterministic and fast).

use std::io::Cursor;

fn invoke(argv: &[&str], input: &str) -> (i32, String) {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut stdin = Cursor::new(input.as_bytes().to_vec());
    let mut out = Vec::new();
    let code = periodica_cli::run(&argv, &mut stdin, &mut out).expect("cli run");
    (code, String::from_utf8(out).expect("utf8"))
}

#[test]
fn generate_discretize_mine_round_trip() {
    // generate a clean periodic series…
    let (code, series) = invoke(
        &[
            "generate", "--length", "3000", "--period", "24", "--sigma", "6", "--seed", "7",
        ],
        "",
    );
    assert_eq!(code, 0);

    // …mine it via stdin with an explicit alphabet and engine…
    let (code, out) = invoke(
        &[
            "mine",
            "-",
            "--threshold",
            "0.95",
            "--alphabet",
            "abcdef",
            "--engine",
            "bitset",
            "--max-period",
            "60",
            "--fundamentals",
        ],
        &series,
    );
    assert_eq!(code, 0);
    assert!(out.contains("period    24"), "{out}");

    // …and confirm the fast candidate phase agrees.
    let (code, periods) = invoke(
        &["periods", "-", "--threshold", "0.95", "--max-period", "60"],
        &series,
    );
    assert_eq!(code, 0);
    assert!(periods.lines().any(|l| l.trim() == "24"), "{periods}");
}

#[test]
fn noisy_generation_still_detectable() {
    let (code, series) = invoke(
        &[
            "generate",
            "--length",
            "20000",
            "--period",
            "25",
            "--seed",
            "3",
            "--noise",
            "0.3",
            "--noise-mix",
            "R",
        ],
        "",
    );
    assert_eq!(code, 0);
    let (code, out) = invoke(
        &[
            "mine",
            "-",
            "--threshold",
            "0.4",
            "--max-period",
            "50",
            "--no-patterns",
        ],
        &series,
    );
    assert_eq!(code, 0);
    assert!(out.contains("period    25"), "{out}");
}

#[test]
fn discretize_then_periods_pipeline() {
    // A numeric sawtooth with period 8.
    let csv: String = (0..800).map(|i| format!("{}\n", (i % 8) * 10)).collect();
    let (code, symbols) = invoke(
        &["discretize", "-", "--levels", "4", "--scheme", "width"],
        &csv,
    );
    assert_eq!(code, 0);
    let (code, out) = invoke(
        &["periods", "-", "--threshold", "0.9", "--max-period", "40"],
        &symbols,
    );
    assert_eq!(code, 0);
    assert!(out.lines().any(|l| l.trim() == "8"), "{out}");
}

#[test]
fn trends_command_runs_on_symbol_input() {
    let series = "abcd".repeat(300);
    let (code, out) = invoke(
        &[
            "trends",
            "-",
            "--max-period",
            "40",
            "--limit",
            "8",
            "--sketches",
            "24",
        ],
        &series,
    );
    assert_eq!(code, 0);
    let ranked: Vec<usize> = out
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next()?.parse().ok())
        .collect();
    assert_eq!(ranked.len(), 8);
    assert!(ranked.iter().any(|&p| p % 4 == 0), "{ranked:?}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let argv: Vec<String> = ["mine", "/nonexistent/path.txt"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut stdin = Cursor::new(Vec::new());
    let mut out = Vec::new();
    assert!(periodica_cli::run(&argv, &mut stdin, &mut out).is_err());

    let argv: Vec<String> = ["generate", "--length", "100"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let err = periodica_cli::run(&argv, &mut Cursor::new(Vec::new()), &mut out)
        .expect_err("missing --period");
    assert!(err.to_string().contains("period"));
}
