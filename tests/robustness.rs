//! Noise robustness and failure injection through the public API.

use periodica::prelude::*;
use periodica::series::generate::{PeriodicSeriesSpec, SymbolDistribution};
use periodica::series::noise::{figure6_mixtures, NoiseSpec};
use periodica::transform::external::{autocorrelate_stream, StreamingAutocorrelator};

fn planted(length: usize, period: usize, seed: u64) -> SymbolSeries {
    PeriodicSeriesSpec {
        length,
        period,
        alphabet_size: 10,
        distribution: SymbolDistribution::Uniform,
    }
    .generate(seed)
    .expect("generate")
    .series
}

/// The paper's Fig. 6 headline: 50% replacement noise is tolerated at a
/// 40% threshold, while insertion/deletion degrade much faster.
#[test]
fn figure6_regimes_hold() {
    let clean = planted(60_000, 25, 1);
    let conf = |mix: &NoiseSpec| {
        let noisy = mix.apply(&clean, 9);
        period_confidence(&noisy, 25)
    };
    // The paper puts this boundary right at 0.4; with noise events drawn
    // with replacement over positions the expectation sits at ~0.40 and
    // individual seeds land on either side of it.
    let replacement50 = conf(&NoiseSpec::replacement(0.5).expect("spec"));
    assert!(replacement50 >= 0.37, "replacement@50%: {replacement50}");
    let insertion10 = conf(&NoiseSpec::insertion(0.1).expect("spec"));
    assert!(insertion10 < 0.25, "insertion@10%: {insertion10}");
    let deletion10 = conf(&NoiseSpec::deletion(0.1).expect("spec"));
    assert!(deletion10 < 0.25, "deletion@10%: {deletion10}");
}

/// Confidence decays monotonically (within tolerance) as replacement noise
/// grows — the left-to-right shape of every Fig. 6 curve.
#[test]
fn replacement_decay_is_monotone() {
    let clean = planted(40_000, 32, 2);
    let mut last = f64::INFINITY;
    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let noisy = NoiseSpec::replacement(pct).expect("spec").apply(&clean, 4);
        let c = period_confidence(&noisy, 32);
        assert!(c <= last + 0.03, "confidence rose: {last} -> {c} at {pct}");
        last = c;
    }
    assert!(last < 0.55);
}

/// Every Fig. 6 mixture leaves the detector *operational* (no panics, sane
/// outputs) across the full ratio sweep.
#[test]
fn all_mixtures_remain_operational() {
    let clean = planted(5_000, 25, 3);
    for mix in figure6_mixtures() {
        for ratio in [0.0, 0.25, 0.5] {
            let noisy = NoiseSpec::new(mix.clone(), ratio)
                .expect("spec")
                .apply(&clean, 8);
            let report = ObscureMiner::builder()
                .threshold(0.3)
                .max_period(100)
                .build()
                .mine(&noisy)
                .expect("mine survives noise");
            for sp in &report.detection.periodicities {
                assert!(sp.confidence <= 1.0 + 1e-9);
                assert!(sp.phase < sp.period);
            }
        }
    }
}

/// Failure injection: every bad configuration surfaces as a typed error,
/// never a panic.
#[test]
fn bad_configurations_error_cleanly() {
    let series = planted(100, 10, 4);
    for psi in [0.0, -1.0, 2.0, f64::NAN] {
        assert!(ObscureMiner::builder()
            .threshold(psi)
            .build()
            .mine(&series)
            .is_err());
    }
    let err = ObscureMiner::builder()
        .threshold(0.5)
        .min_period(50)
        .max_period(10)
        .build()
        .mine(&series)
        .expect_err("inverted period range");
    assert!(err.to_string().contains("period range"));

    assert!(NoiseSpec::replacement(-0.1).is_err());
    assert!(NoiseSpec::new(vec![], 0.1).is_err());
    assert!(Alphabet::from_symbols(Vec::<String>::new()).is_err());
    assert!(Alphabet::latin(99).is_err());
}

/// The bounded-memory streaming autocorrelator agrees with the in-core
/// indicator path end to end (the external-FFT substitution of Sect. 3.1).
#[test]
fn out_of_core_counts_match_in_core_series_counts() {
    let series = planted(4_000, 17, 5);
    let symbol = SymbolId(3);
    let indicator = series.indicator(symbol);
    let max_lag = 200;

    // Stream in awkward blocks.
    let mut acc = StreamingAutocorrelator::new(max_lag);
    for chunk in indicator.chunks(313) {
        acc.push_block(chunk).expect("push");
    }
    let streamed = acc.finish();

    for (p, &count) in streamed.iter().enumerate().skip(1) {
        assert_eq!(
            count as usize,
            series.lag_matches(symbol, p),
            "lag {p} mismatch"
        );
    }

    // One-shot helper agrees too.
    let one_shot = autocorrelate_stream(indicator.iter().copied(), max_lag).expect("stream");
    assert_eq!(one_shot, streamed);
}

/// sigma = 1 and tiny alphabets behave.
#[test]
fn single_symbol_alphabet_is_fully_periodic() {
    let alphabet = Alphabet::latin(1).expect("alphabet");
    let series = SymbolSeries::from_ids(vec![SymbolId(0); 64], alphabet).expect("series");
    let report = ObscureMiner::builder()
        .threshold(1.0)
        .build()
        .mine(&series)
        .expect("mine");
    // Every period p has every phase fully periodic for the one symbol.
    for p in 1..=4usize {
        let at = report.detection.at_period(p);
        assert_eq!(at.len(), p, "period {p}");
        assert!(at.iter().all(|sp| (sp.confidence - 1.0).abs() < 1e-12));
    }
}

// ---------------------------------------------------------------------------
// Corrupt on-disk series files: every damage class must surface as a typed
// `SeriesError` through the library and as the documented exit code through
// the CLI (2 = usage, 3 = I/O, 4 = core/format; see crates/cli).

mod corrupt_series_files {
    use super::*;
    use periodica::series::source::{write_series_file, FileSeriesReader};
    use periodica::series::SeriesError;
    use std::io::Cursor;
    use std::path::PathBuf;

    /// Writes a small valid binary series file and returns its path + bytes.
    fn valid_series_file(tag: &str) -> (PathBuf, Vec<u8>) {
        let series = planted(500, 10, 6);
        let path = std::env::temp_dir().join(format!(
            "periodica-robustness-{}-{tag}.series",
            std::process::id()
        ));
        write_series_file(&path, &series).expect("write series file");
        let bytes = std::fs::read(&path).expect("read back");
        (path, bytes)
    }

    /// Runs `periodica mine --input <path>` and returns (exit code, output).
    fn mine_file(path: &std::path::Path) -> (i32, String) {
        let argv: Vec<String> = [
            "mine",
            "--input",
            path.to_str().expect("utf8 path"),
            "--max-period",
            "20",
            "--threshold",
            "0.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut stdin = Cursor::new(Vec::new());
        let mut out = Vec::new();
        match periodica_cli::run(&argv, &mut stdin, &mut out) {
            Ok(code) => (code, String::from_utf8(out).expect("utf8")),
            // main() maps CliError to the exit-code table; mirror it here.
            Err(e) => (i32::from(e.exit_code()), e.to_string()),
        }
    }

    #[test]
    fn truncated_file_is_a_typed_error_and_exit_4() {
        let (path, bytes) = valid_series_file("truncated");
        std::fs::write(&path, &bytes[..bytes.len() - 12]).expect("truncate");
        // Library: the damage is typed, not a panic or a generic I/O error.
        let err = FileSeriesReader::open(&path)
            .and_then(|mut r| r.verify())
            .expect_err("truncated file must not verify");
        assert!(
            matches!(err, SeriesError::TruncatedSeriesFile { .. }),
            "unexpected error: {err:?}"
        );
        // CLI: format damage is a core error (exit 4), not usage or I/O.
        let (code, out) = mine_file(&path);
        assert_eq!(code, 4, "output: {out}");
        assert!(out.contains("truncated"), "output: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_header_byte_is_a_typed_error_and_exit_4() {
        let (path, bytes) = valid_series_file("header");
        // Damage the magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0x40;
        std::fs::write(&path, &bad).expect("write");
        let err = FileSeriesReader::open(&path).expect_err("bad magic must not open");
        assert!(
            matches!(err, SeriesError::CorruptSeriesFile { .. }),
            "unexpected error: {err:?}"
        );
        let (code, out) = mine_file(&path);
        assert_eq!(code, 4, "output: {out}");

        // Damage the format version instead: a from-the-future document.
        let mut future = bytes.clone();
        future[4] ^= 0x20;
        std::fs::write(&path, &future).expect("write");
        let err = FileSeriesReader::open(&path).expect_err("future version must not open");
        assert!(
            matches!(err, SeriesError::UnsupportedSeriesVersion { .. }),
            "unexpected error: {err:?}"
        );
        let (code, out) = mine_file(&path);
        assert_eq!(code, 4, "output: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_trailer_checksum_is_a_typed_error_and_exit_4() {
        let (path, bytes) = valid_series_file("trailer");
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // the FNV-1a trailer is the final 8 bytes
        std::fs::write(&path, &bad).expect("write");
        // The header still parses; the damage surfaces at the end of the
        // first sequential pass.
        let mut reader = FileSeriesReader::open(&path).expect("open");
        assert!(!reader.checksum_verified());
        let err = reader.verify().expect_err("bad trailer must not verify");
        assert!(
            matches!(err, SeriesError::SeriesChecksumMismatch { .. }),
            "unexpected error: {err:?}"
        );
        let (code, out) = mine_file(&path);
        assert_eq!(code, 4, "output: {out}");
        assert!(out.contains("checksum"), "output: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let (path, bytes) = valid_series_file("payload");
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2; // comfortably inside the payload
        bad[mid] ^= 0x04;
        std::fs::write(&path, &bad).expect("write");
        let mut reader = FileSeriesReader::open(&path).expect("open");
        let result = reader.verify();
        assert!(
            matches!(
                result,
                Err(SeriesError::SeriesChecksumMismatch { .. })
                    | Err(SeriesError::CorruptSeriesFile { .. })
            ),
            "payload damage escaped the trailer: {result:?}"
        );
        let (code, _) = mine_file(&path);
        assert_eq!(code, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error_and_exit_3() {
        let path = std::env::temp_dir().join(format!(
            "periodica-robustness-{}-definitely-missing.series",
            std::process::id()
        ));
        let err = FileSeriesReader::open(&path).expect_err("missing file must not open");
        assert!(
            matches!(err, SeriesError::Io(_)),
            "unexpected error: {err:?}"
        );
        let (code, _) = mine_file(&path);
        assert_eq!(code, 3, "missing input is an I/O error, not a format error");
    }
}
