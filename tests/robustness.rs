//! Noise robustness and failure injection through the public API.

use periodica::prelude::*;
use periodica::series::generate::{PeriodicSeriesSpec, SymbolDistribution};
use periodica::series::noise::{figure6_mixtures, NoiseSpec};
use periodica::transform::external::{autocorrelate_stream, StreamingAutocorrelator};

fn planted(length: usize, period: usize, seed: u64) -> SymbolSeries {
    PeriodicSeriesSpec {
        length,
        period,
        alphabet_size: 10,
        distribution: SymbolDistribution::Uniform,
    }
    .generate(seed)
    .expect("generate")
    .series
}

/// The paper's Fig. 6 headline: 50% replacement noise is tolerated at a
/// 40% threshold, while insertion/deletion degrade much faster.
#[test]
fn figure6_regimes_hold() {
    let clean = planted(60_000, 25, 1);
    let conf = |mix: &NoiseSpec| {
        let noisy = mix.apply(&clean, 9);
        period_confidence(&noisy, 25)
    };
    // The paper puts this boundary right at 0.4; with noise events drawn
    // with replacement over positions the expectation sits at ~0.40 and
    // individual seeds land on either side of it.
    let replacement50 = conf(&NoiseSpec::replacement(0.5).expect("spec"));
    assert!(replacement50 >= 0.37, "replacement@50%: {replacement50}");
    let insertion10 = conf(&NoiseSpec::insertion(0.1).expect("spec"));
    assert!(insertion10 < 0.25, "insertion@10%: {insertion10}");
    let deletion10 = conf(&NoiseSpec::deletion(0.1).expect("spec"));
    assert!(deletion10 < 0.25, "deletion@10%: {deletion10}");
}

/// Confidence decays monotonically (within tolerance) as replacement noise
/// grows — the left-to-right shape of every Fig. 6 curve.
#[test]
fn replacement_decay_is_monotone() {
    let clean = planted(40_000, 32, 2);
    let mut last = f64::INFINITY;
    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let noisy = NoiseSpec::replacement(pct).expect("spec").apply(&clean, 4);
        let c = period_confidence(&noisy, 32);
        assert!(c <= last + 0.03, "confidence rose: {last} -> {c} at {pct}");
        last = c;
    }
    assert!(last < 0.55);
}

/// Every Fig. 6 mixture leaves the detector *operational* (no panics, sane
/// outputs) across the full ratio sweep.
#[test]
fn all_mixtures_remain_operational() {
    let clean = planted(5_000, 25, 3);
    for mix in figure6_mixtures() {
        for ratio in [0.0, 0.25, 0.5] {
            let noisy = NoiseSpec::new(mix.clone(), ratio)
                .expect("spec")
                .apply(&clean, 8);
            let report = ObscureMiner::builder()
                .threshold(0.3)
                .max_period(100)
                .build()
                .mine(&noisy)
                .expect("mine survives noise");
            for sp in &report.detection.periodicities {
                assert!(sp.confidence <= 1.0 + 1e-9);
                assert!(sp.phase < sp.period);
            }
        }
    }
}

/// Failure injection: every bad configuration surfaces as a typed error,
/// never a panic.
#[test]
fn bad_configurations_error_cleanly() {
    let series = planted(100, 10, 4);
    for psi in [0.0, -1.0, 2.0, f64::NAN] {
        assert!(ObscureMiner::builder()
            .threshold(psi)
            .build()
            .mine(&series)
            .is_err());
    }
    let err = ObscureMiner::builder()
        .threshold(0.5)
        .min_period(50)
        .max_period(10)
        .build()
        .mine(&series)
        .expect_err("inverted period range");
    assert!(err.to_string().contains("period range"));

    assert!(NoiseSpec::replacement(-0.1).is_err());
    assert!(NoiseSpec::new(vec![], 0.1).is_err());
    assert!(Alphabet::from_symbols(Vec::<String>::new()).is_err());
    assert!(Alphabet::latin(99).is_err());
}

/// The bounded-memory streaming autocorrelator agrees with the in-core
/// indicator path end to end (the external-FFT substitution of Sect. 3.1).
#[test]
fn out_of_core_counts_match_in_core_series_counts() {
    let series = planted(4_000, 17, 5);
    let symbol = SymbolId(3);
    let indicator = series.indicator(symbol);
    let max_lag = 200;

    // Stream in awkward blocks.
    let mut acc = StreamingAutocorrelator::new(max_lag);
    for chunk in indicator.chunks(313) {
        acc.push_block(chunk).expect("push");
    }
    let streamed = acc.finish();

    for (p, &count) in streamed.iter().enumerate().skip(1) {
        assert_eq!(
            count as usize,
            series.lag_matches(symbol, p),
            "lag {p} mismatch"
        );
    }

    // One-shot helper agrees too.
    let one_shot = autocorrelate_stream(indicator.iter().copied(), max_lag).expect("stream");
    assert_eq!(one_shot, streamed);
}

/// sigma = 1 and tiny alphabets behave.
#[test]
fn single_symbol_alphabet_is_fully_periodic() {
    let alphabet = Alphabet::latin(1).expect("alphabet");
    let series = SymbolSeries::from_ids(vec![SymbolId(0); 64], alphabet).expect("series");
    let report = ObscureMiner::builder()
        .threshold(1.0)
        .build()
        .mine(&series)
        .expect("mine");
    // Every period p has every phase fully periodic for the one symbol.
    for p in 1..=4usize {
        let at = report.detection.at_period(p);
        assert_eq!(at.len(), p, "period {p}");
        assert!(at.iter().all(|sp| (sp.confidence - 1.0).abs() < 1e-12));
    }
}
