//! Differential conformance harness: every production path versus the
//! deliberately naive oracle (`periodica-oracle`).
//!
//! Every other equivalence test in the workspace compares one optimized
//! path against another; a shared bug stays invisible. Here the trusted
//! side is the oracle, which implements the paper's definitions literally
//! and depends only on `periodica-series` (see `crates/oracle`). Paths
//! exercised:
//!
//! * batch detection through every engine (`Naive`, `Bitset`,
//!   `SpectrumEngine` and `ParallelSpectrumEngine` under every
//!   [`BoundedLagPolicy`]), with pruning on and off;
//! * the phase-blind candidate-period test;
//! * pattern measurement (`pattern_support`, and the
//!   `PairMatchIndex`-backed `pattern_support_indexed`);
//! * Apriori enumeration (`PatternMode::EnumerateAll`) against the
//!   oracle's full Cartesian-product frequent set, and the closed miner
//!   (`PatternMode::Closed`) against oracle closure;
//! * `OnlineDetector` chunked ingest (counts and candidates);
//! * `SessionManager` under forced eviction, snapshot and dump round
//!   trips, plus the same workload routed through a 3-shard
//!   `ShardedSessionManager` (byte-identical dumps, identical answers);
//! * byte-level fuzzing of the PSNP/PSES snapshot decoders (never panic,
//!   errors carry in-range offsets, accepted decodes re-encode
//!   canonically).
//!
//! Workloads come from three sources: the committed golden corpus in
//! `tests/fixtures/*.json` (regenerate with
//! `cargo run -p periodica-oracle --example gen_fixtures`), seeded
//! `periodica-datagen` generators, and structure-aware adversarial
//! generators (period-boundary lengths `n = {0, 1, p-1} (mod p)`,
//! single-symbol alphabets, alphabet sizes at the 64-bit packing boundary,
//! thresholds equal to representable rationals). A randomized pass respects
//! `CONFORMANCE_BUDGET_SECS` (default 3; CI uses 60, the weekly job 600).

use std::sync::Arc;
use std::time::{Duration, Instant};

use periodica_core::engine::{
    BitsetEngine, BoundedLagPolicy, MatchEngine, NaiveEngine, ParallelSpectrumEngine,
    SpectrumEngine,
};
use periodica_core::{
    decode_dump, mine_patterns, pattern_support, pattern_support_indexed, DetectionResult,
    DetectorConfig, EngineKind, EvictionPolicy, MinedPattern, MinerConfig, ObscureMiner,
    OnlineDetector, OutOfCoreMiner, PairMatchIndex, Pattern, PatternMinerConfig, PatternMode,
    PeriodicityDetector, SessionId, SessionManager, SessionSnapshot, ShardedSessionManager,
};
use periodica_datagen::{EventLogConfig, Heartbeat, PowerConfig, RetailConfig};
use periodica_oracle::diff::{diff_counts, diff_patterns, diff_periodicities, Workload};
use periodica_oracle::fixture::Fixture;
use periodica_oracle::naive::{self, OraclePattern, OraclePeriodicity, OracleSupport};
use periodica_series::{
    write_series_file, Alphabet, FileSeriesReader, MemorySource, SymbolId, SymbolSeries,
};

// --------------------------------------------------------------------------
// Conversions: production vocabulary -> oracle vocabulary.

fn to_oracle_periodicities(result: &DetectionResult) -> Vec<OraclePeriodicity> {
    result
        .periodicities
        .iter()
        .map(|sp| OraclePeriodicity {
            symbol: sp.symbol,
            period: sp.period,
            phase: sp.phase,
            f2: sp.f2 as u64,
            denominator: sp.denominator as u64,
            confidence: sp.confidence,
        })
        .collect()
}

fn to_oracle_pattern(pattern: &Pattern) -> OraclePattern {
    OraclePattern {
        period: pattern.period(),
        slots: pattern.slots().to_vec(),
    }
}

fn to_oracle_mined(mined: &[MinedPattern]) -> Vec<(OraclePattern, OracleSupport)> {
    mined
        .iter()
        .map(|m| {
            (
                to_oracle_pattern(&m.pattern),
                OracleSupport {
                    count: m.support.count as u64,
                    denominator: m.support.denominator as u64,
                    support: m.support.support,
                },
            )
        })
        .collect()
}

// --------------------------------------------------------------------------
// The per-workload differential check.

/// Every detector path under test: engine x bounded-lag policy. Engines
/// are not `Clone`, so paths are named specs that build fresh engines.
#[derive(Clone, Copy)]
enum EnginePath {
    Naive,
    Bitset,
    Spectrum(BoundedLagPolicy),
    Parallel(BoundedLagPolicy),
}

impl EnginePath {
    fn all() -> Vec<EnginePath> {
        let mut paths = vec![EnginePath::Naive, EnginePath::Bitset];
        for policy in [
            BoundedLagPolicy::Auto,
            BoundedLagPolicy::Always,
            BoundedLagPolicy::Never,
        ] {
            paths.push(EnginePath::Spectrum(policy));
            paths.push(EnginePath::Parallel(policy));
        }
        paths
    }

    fn name(self) -> String {
        match self {
            EnginePath::Naive => "naive".into(),
            EnginePath::Bitset => "bitset".into(),
            EnginePath::Spectrum(p) => format!("spectrum/{p:?}"),
            EnginePath::Parallel(p) => format!("parallel/{p:?}"),
        }
    }

    fn build(self) -> Box<dyn MatchEngine> {
        match self {
            EnginePath::Naive => Box::new(NaiveEngine),
            EnginePath::Bitset => Box::new(BitsetEngine),
            EnginePath::Spectrum(p) => Box::new(SpectrumEngine::with_policy(p)),
            EnginePath::Parallel(p) => Box::new(ParallelSpectrumEngine::with_policy(p)),
        }
    }
}

/// Cap for oracle-side Cartesian enumeration. Workloads denser than this
/// skip the full-set pattern comparison (measurement checks still run).
const ORACLE_PATTERN_CAP: usize = 1 << 14;

/// Runs one workload through every production path and panics with the
/// first [`periodica_oracle::Divergence`] found.
fn check_workload(workload: &Workload, series: &SymbolSeries) {
    let psi = workload.psi;
    let max_p = workload.max_period;
    let expected = naive::symbol_periodicities(series, psi, 1, Some(max_p));

    // -- Batch detection: every engine, pruning on and off. ---------------
    for path_spec in EnginePath::all() {
        for prune in [true, false] {
            let config = DetectorConfig {
                threshold: psi,
                min_period: 1,
                max_period: Some(max_p),
                prune,
            };
            let detector = PeriodicityDetector::new(config, path_spec.build());
            let result = detector.detect(series).expect("detect");
            let got = to_oracle_periodicities(&result);
            let path = format!("detect/{}/prune={prune}", path_spec.name());
            if let Some(d) = diff_periodicities(workload, &path, &expected, &got) {
                panic!("{d}");
            }
        }
    }

    // -- Phase-blind candidate periods. ------------------------------------
    let expected_candidates = naive::candidate_periods(series, psi, 1, Some(max_p));
    let detector = PeriodicityDetector::new(
        DetectorConfig {
            threshold: psi,
            min_period: 1,
            max_period: Some(max_p),
            prune: true,
        },
        EngineKind::Spectrum.build(),
    );
    let got_candidates = detector.candidate_periods(series).expect("candidates");
    assert_eq!(
        expected_candidates, got_candidates,
        "candidate_periods diverged on {workload}"
    );

    // -- Pattern measurement and mining. -----------------------------------
    let oracle_frequent = naive::frequent_patterns(series, psi, 1, Some(max_p), ORACLE_PATTERN_CAP);
    let detection = detector.detect(series).expect("detect for mining");

    if let Ok(oracle_frequent) = &oracle_frequent {
        // Full Apriori enumeration must equal the oracle's Cartesian set.
        let config = PatternMinerConfig {
            min_support: psi,
            mode: PatternMode::EnumerateAll,
            candidate_cap: ORACLE_PATTERN_CAP,
            ..Default::default()
        };
        match mine_patterns(series, &detection, &config) {
            Ok(mined) => {
                let got = to_oracle_mined(&mined);
                if let Some(d) =
                    diff_patterns(workload, "mine/enumerate-all", oracle_frequent, &got)
                {
                    panic!("{d}");
                }
            }
            Err(e) => {
                panic!("enumerate-all failed where the oracle fit its cap: {e} on {workload}")
            }
        }

        // Closed mining: measured supports must match the oracle, each
        // multi-symbol output must be closed, and the closed set must carry
        // every frequent pattern's count (information-losslessness).
        let config = PatternMinerConfig {
            min_support: psi,
            mode: PatternMode::Closed,
            candidate_cap: ORACLE_PATTERN_CAP,
            ..Default::default()
        };
        let closed = mine_patterns(series, &detection, &config).expect("closed mining");
        for m in &closed {
            let oracle_pattern = to_oracle_pattern(&m.pattern);
            let measured = naive::pattern_support(series, &oracle_pattern);
            assert_eq!(
                (measured.count, measured.denominator),
                (m.support.count as u64, m.support.denominator as u64),
                "closed miner reported a wrong support for {} on {workload}",
                m.pattern.render(series.alphabet()),
            );
            if m.pattern.cardinality() >= 2 {
                let items: Vec<(usize, SymbolId)> = detection
                    .at_period(m.pattern.period())
                    .iter()
                    .map(|sp| (sp.phase, sp.symbol))
                    .collect();
                let closure = naive::closure(series, &items, &oracle_pattern);
                assert_eq!(
                    closure, oracle_pattern,
                    "closed miner emitted a non-closed pattern on {workload}"
                );
            }
        }
        for (pattern, support) in oracle_frequent {
            if pattern.cardinality() < 2 {
                continue; // singles carry Def.-2 denominators, emitted directly
            }
            let best = closed
                .iter()
                .filter(|m| {
                    m.pattern.cardinality() >= 2
                        && pattern.is_subpattern_of(&to_oracle_pattern(&m.pattern))
                })
                .map(|m| m.support.count as u64)
                .max();
            assert_eq!(
                best,
                Some(support.count),
                "closed set lost the support of {:?} on {workload}",
                pattern
            );
        }

        // Scalar and indexed measurement agree with the oracle on every
        // frequent pattern (and the indexed path on its own terms).
        for (oracle_pattern, support) in oracle_frequent {
            let fixed = oracle_pattern.fixed();
            let pattern = Pattern::new(oracle_pattern.period, &fixed).expect("pattern");
            let scalar = pattern_support(series, &pattern);
            assert_eq!(
                (scalar.count as u64, scalar.denominator as u64),
                (support.count, support.denominator),
                "pattern_support diverged on {workload}"
            );
            let index = PairMatchIndex::from_detection(series, &detection, oracle_pattern.period);
            let mut scratch = periodica_core::bitvec::BitVec::zeros(index.universe());
            if let Some(indexed) = pattern_support_indexed(&index, &pattern, &mut scratch) {
                assert_eq!(
                    (indexed.count as u64, indexed.denominator as u64),
                    (support.count, support.denominator),
                    "pattern_support_indexed diverged on {workload}"
                );
            }
        }
    }

    // -- Online detector: chunked ingest, counts and candidates. -----------
    let window = max_p.max(1);
    for chunk in [1usize, 7, 64, series.len().max(1)] {
        let mut online = OnlineDetector::builder(series.alphabet().clone())
            .window(window)
            .threshold(psi)
            .flush_block(chunk.min(16))
            .build();
        for block in series.symbols().chunks(chunk) {
            online.extend(block.iter().copied()).expect("ingest");
        }
        let mut expected_counts = Vec::new();
        let mut got_counts = Vec::new();
        for p in 1..=window.min(series.len().saturating_sub(1)) {
            for symbol in series.alphabet().ids() {
                let label = format!("matches(sym={}, p={p})", symbol.index());
                expected_counts.push((label.clone(), naive::lag_matches(series, symbol, p)));
                got_counts.push((label, online.matches(symbol, p).expect("matches")));
            }
        }
        let path = format!("online/chunk={chunk}");
        if let Some(d) = diff_counts(workload, &path, &expected_counts, &got_counts) {
            panic!("{d}");
        }
        let online_candidates: Vec<usize> = online
            .candidates(psi)
            .expect("candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        let expected_online = naive::candidate_periods(
            series,
            psi,
            1,
            Some(window.min(series.len().saturating_sub(1))),
        );
        assert_eq!(
            expected_online, online_candidates,
            "online candidates diverged on {workload} (chunk={chunk})"
        );
    }

    // -- Session manager under forced eviction. ----------------------------
    check_sessions(workload, series, psi, window);
}

/// Splits the series across two sessions ingested interleaved under a
/// one-resident-session budget (every switch parks and rehydrates), then
/// checks both sessions' candidates and snapshot round trips against the
/// oracle on the prefix each session actually consumed.
fn check_sessions(workload: &Workload, series: &SymbolSeries, psi: f64, window: usize) {
    if series.is_empty() {
        return;
    }
    let mut manager = SessionManager::builder(series.alphabet().clone())
        .window(window)
        .threshold(psi)
        .flush_block(8)
        .policy(EvictionPolicy {
            max_sessions: Some(1),
            max_resident_bytes: None,
        })
        .build();
    let even = SessionId::from("even");
    let odd = SessionId::from("odd");
    let mut even_syms: Vec<SymbolId> = Vec::new();
    let mut odd_syms: Vec<SymbolId> = Vec::new();
    for (i, block) in series.symbols().chunks(5).enumerate() {
        let id = if i % 2 == 0 { &even } else { &odd };
        manager.ingest(id, block).expect("ingest");
        if i % 2 == 0 {
            even_syms.extend_from_slice(block);
        } else {
            odd_syms.extend_from_slice(block);
        }
    }
    assert!(
        manager.resident_count() <= 1,
        "budget of one resident session not enforced"
    );
    for (id, symbols) in [(&even, &even_syms), (&odd, &odd_syms)] {
        let sub =
            SymbolSeries::from_ids(symbols.clone(), series.alphabet().clone()).expect("subseries");
        let expected: Vec<usize> =
            naive::candidate_periods(&sub, psi, 1, Some(window.min(sub.len().saturating_sub(1))));
        let got: Vec<usize> = manager
            .candidates(id)
            .expect("session candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        assert_eq!(
            expected, got,
            "session {id} candidates diverged on {workload} after evict/restore"
        );
        // Snapshot -> bytes -> restore must preserve the answer exactly.
        let snapshot = manager.snapshot(id).expect("snapshot");
        let bytes = snapshot.to_bytes();
        let decoded = SessionSnapshot::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded.to_bytes(), bytes, "snapshot encoding not canonical");
        manager.remove(id);
        manager.restore(&decoded).expect("restore");
        let after: Vec<usize> = manager
            .candidates(id)
            .expect("restored candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        assert_eq!(got, after, "snapshot round trip changed {id} on {workload}");
    }
    // Dump/restore_dump: the all-sessions PSES container round-trips too.
    let dump = manager.dump().expect("dump");
    let decoded = decode_dump(&dump).expect("decode dump");
    assert_eq!(decoded.len(), 2, "dump should carry both sessions");

    // The sharded service must be invisible too: the same interleaved
    // workload through a 3-shard manager (each shard evicting down to one
    // resident session) must produce a byte-identical dump and the same
    // per-session answers as the single manager above.
    let sharded = ShardedSessionManager::new(
        SessionManager::builder(series.alphabet().clone())
            .window(window)
            .threshold(psi)
            .flush_block(8)
            .policy(EvictionPolicy {
                max_sessions: Some(1),
                max_resident_bytes: None,
            }),
        3,
    );
    for (i, block) in series.symbols().chunks(5).enumerate() {
        let id = if i % 2 == 0 { &even } else { &odd };
        sharded.ingest(id, block).expect("sharded ingest");
    }
    assert_eq!(
        sharded.dump().expect("sharded dump"),
        dump,
        "sharded dump diverged from the single manager on {workload}"
    );
    for id in [&even, &odd] {
        let single: Vec<usize> = manager
            .candidates(id)
            .expect("candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        let routed: Vec<usize> = sharded
            .candidates(id)
            .expect("sharded candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        assert_eq!(
            single, routed,
            "sharded candidates diverged for {id} on {workload}"
        );
    }
    let mut fresh = SessionManager::builder(series.alphabet().clone())
        .window(window)
        .threshold(psi)
        .build();
    assert_eq!(fresh.restore_dump(&dump).expect("restore dump"), 2);
    for (id, _) in [(&even, ()), (&odd, ())] {
        let a: Vec<usize> = manager
            .candidates(id)
            .expect("candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        let b: Vec<usize> = fresh
            .candidates(id)
            .expect("candidates")
            .iter()
            .map(|c| c.period)
            .collect();
        assert_eq!(a, b, "dump round trip changed {id} on {workload}");
    }
}

// --------------------------------------------------------------------------
// Workload sources.

/// Deterministic noise source for generated workloads (same LCG family as
/// the fixture generator, different constants are unnecessary).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn wide_alphabet(sigma: usize) -> Arc<Alphabet> {
    if sigma <= 26 {
        Alphabet::latin(sigma).expect("latin")
    } else {
        Alphabet::from_symbols((0..sigma).map(|i| format!("s{i}"))).expect("wide")
    }
}

/// One structure-aware adversarial workload from a seed: picks the period
/// first, then a length residue in `{0, 1, p-1} (mod p)`, an alphabet size
/// from the boundary set, and a threshold that is an exact small rational.
fn adversarial_workload(seed: u64) -> (Workload, SymbolSeries) {
    let mut lcg = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    let sigma = [1usize, 2, 3, 5, 63, 64, 65][lcg.below(7)];
    let p = 2 + lcg.below(9); // planted period 2..=10
    let reps = 3 + lcg.below(6); // 3..=8 whole segments
    let residue = [0usize, 1, p - 1][lcg.below(3)];
    let n = (p * reps + residue).max(2);
    let noise_pct = [0usize, 10, 25][lcg.below(3)];
    // Exact rationals with small denominators: these hit projection-pair
    // denominators exactly on short series.
    let (psi_num, psi_den) = [(1u64, 2u64), (2, 3), (3, 4), (1, 3), (4, 5), (1, 1)][lcg.below(6)];
    let psi = psi_num as f64 / psi_den as f64;
    let max_period = (n / 2).clamp(1, 2 * p + 3);
    let alphabet = wide_alphabet(sigma);
    let ids: Vec<SymbolId> = (0..n)
        .map(|i| {
            let base = (i % p) % sigma;
            let id = if lcg.below(100) < noise_pct {
                lcg.below(sigma)
            } else {
                base
            };
            SymbolId::from_index(id)
        })
        .collect();
    let series = SymbolSeries::from_ids(ids, alphabet).expect("workload series");
    let workload = Workload {
        label: format!("adversarial:p={p},residue={residue},noise={noise_pct}"),
        seed,
        n,
        sigma,
        psi,
        max_period,
    };
    (workload, series)
}

// --------------------------------------------------------------------------
// Tests.

#[test]
fn golden_fixture_corpus_conforms() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/fixtures exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 17,
        "corpus shrank: {} files",
        entries.len()
    );
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let fixture = Fixture::from_json(&text).expect("parse fixture");
        names.push(fixture.name.clone());
        let series = fixture.build_series().expect("series");

        // The committed expectations must match a fresh oracle run — this
        // catches both corpus drift and accidental oracle changes.
        let recomputed = naive::symbol_periodicities(
            &series,
            fixture.psi(),
            fixture.min_period,
            Some(fixture.max_period),
        );
        let workload = Workload {
            label: format!("fixture:{}", fixture.name),
            seed: 0,
            n: series.len(),
            sigma: series.sigma(),
            psi: fixture.psi(),
            max_period: fixture.max_period,
        };
        if let Some(d) = diff_periodicities(
            &workload,
            "fixture/stored-vs-oracle",
            &fixture.expected_periodicities(),
            &recomputed,
        ) {
            panic!("{d}");
        }
        if fixture.patterns_complete {
            let frequent = naive::frequent_patterns(
                &series,
                fixture.psi(),
                fixture.min_period,
                Some(fixture.max_period),
                1 << 15,
            )
            .expect("fixture enumeration fits");
            if let Some(d) = diff_patterns(
                &workload,
                "fixture/stored-patterns-vs-oracle",
                &fixture.expected_patterns(),
                &frequent,
            ) {
                panic!("{d}");
            }
        } else {
            for (pattern, support) in fixture.expected_patterns() {
                assert_eq!(naive::pattern_support(&series, &pattern), support);
            }
        }

        // And every production path must reproduce them.
        check_workload(&workload, &series);
    }
    // The corpus must keep covering its advertised axes.
    for required in [
        "paper-worked-example",
        "single-symbol-alphabet",
        "sigma-63",
        "sigma-64",
        "sigma-65",
        "threshold-exact-hit",
        "threshold-exact-pattern",
        "boundary-n-mod-p-0",
        "boundary-n-mod-p-1",
        "boundary-n-mod-p-minus-1",
        "chunk-boundary-period-eq-chunk",
        "chunk-boundary-period-chunk-minus-1",
        "chunk-boundary-period-chunk-plus-1",
        "chunk-boundary-segment-spans-three-chunks",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "missing fixture {required}"
        );
    }
}

// --------------------------------------------------------------------------
// Out-of-core differential legs: the file-backed streaming miner versus the
// in-memory engine and the oracle, swept across adversarial chunk sizes.

/// Chunk sizes the out-of-core leg sweeps for a series of length `n`: the
/// conformance chunk the fixtures are pinned against, two budget-planner
/// scales, and the whole-series edge cases.
fn chunk_sweep(n: usize) -> Vec<usize> {
    vec![64, 1024, 4096, n.saturating_sub(1).max(1), n.max(1), n + 7]
}

/// The committed chunk-boundary fixtures must match their datagen
/// generator symbol for symbol — regenerating the corpus is a no-op unless
/// the generator itself changed.
#[test]
fn chunk_boundary_fixtures_match_their_generator() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for (name, config) in periodica_datagen::chunkedge::conformance_fixtures() {
        let path = dir.join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {name} missing from tests/fixtures: {e}"));
        let fixture = Fixture::from_json(&text).expect("parse fixture");
        let committed = fixture.build_series().expect("series");
        let generated = config.generate().expect("generator");
        assert_eq!(
            committed.symbols(),
            generated.symbols(),
            "fixture {name} drifted from its generator; rerun \
             `cargo run -p periodica-oracle --example gen_fixtures`"
        );
        assert_eq!(
            committed.sigma(),
            generated.sigma(),
            "alphabet drifted on {name}"
        );
    }
}

/// The tentpole acceptance check: mining a fixture through the file-backed
/// one-pass path is bit-identical — detections and patterns — to the
/// in-memory engine and to the committed oracle expectations, for every
/// chunk size in the sweep (including chunks smaller than the period, where
/// pair endpoints are only reachable through the overlap carry).
#[test]
fn out_of_core_mining_is_bit_identical_across_chunk_sizes() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/fixtures exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    let tmp = std::env::temp_dir().join(format!("periodica-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let fixture = Fixture::from_json(&text).expect("parse fixture");
        let series = fixture.build_series().expect("series");
        if series.len() < 2 {
            continue;
        }
        let config = MinerConfig {
            threshold: fixture.psi(),
            min_period: fixture.min_period,
            max_period: Some(fixture.max_period),
            ..MinerConfig::default()
        };

        // The in-memory reference answer for this fixture.
        let reference = ObscureMiner::from_config(config.clone())
            .mine(&series)
            .expect("in-memory mine");

        // ... which must itself agree with the oracle expectations.
        let workload = Workload {
            label: format!("outofcore:{}", fixture.name),
            seed: 0,
            n: series.len(),
            sigma: series.sigma(),
            psi: fixture.psi(),
            max_period: fixture.max_period,
        };
        if let Some(d) = diff_periodicities(
            &workload,
            "outofcore/in-memory-vs-oracle",
            &fixture.expected_periodicities(),
            &to_oracle_periodicities(&reference.detection),
        ) {
            panic!("{d}");
        }

        let file = tmp.join(format!("{}.series", fixture.name));
        write_series_file(&file, &series).expect("write series file");

        for chunk in chunk_sweep(series.len()) {
            // File-backed streaming path.
            let mut reader = FileSeriesReader::open(&file).expect("open series file");
            let report = OutOfCoreMiner::new(config.clone(), 1 << 16)
                .expect("out-of-core miner")
                .with_chunk_size(chunk)
                .mine(&mut reader)
                .expect("out-of-core mine");
            assert_eq!(
                reference.detection.periodicities, report.detection.periodicities,
                "out-of-core detections diverged on {} at chunk {chunk}",
                fixture.name
            );
            assert_eq!(
                reference.patterns, report.patterns,
                "out-of-core patterns diverged on {} at chunk {chunk}",
                fixture.name
            );
            assert!(
                reader.checksum_verified(),
                "sequential pass should have verified the FNV trailer on {}",
                fixture.name
            );

            // The in-memory SeriesSource takes the same streaming code path;
            // it must be indistinguishable from the file.
            let mut memory = MemorySource::new(&series);
            let from_memory = OutOfCoreMiner::new(config.clone(), 1 << 16)
                .expect("out-of-core miner")
                .with_chunk_size(chunk)
                .mine(&mut memory)
                .expect("memory-source mine");
            assert_eq!(
                report.detection.periodicities, from_memory.detection.periodicities,
                "memory-source detections diverged on {} at chunk {chunk}",
                fixture.name
            );
            assert_eq!(
                report.patterns, from_memory.patterns,
                "memory-source patterns diverged on {} at chunk {chunk}",
                fixture.name
            );
        }
        std::fs::remove_file(&file).ok();
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn datagen_workloads_conform() {
    // The intro's event log: sparse heartbeats in noise, trimmed to a
    // conformance-friendly length.
    let eventlog = EventLogConfig {
        length: 600,
        heartbeats: vec![Heartbeat {
            symbol: SymbolId::from_index(5),
            period: 60,
            phase: 7,
            reliability: 0.97,
        }],
        seed: 0xE7E9,
        ..Default::default()
    }
    .generate()
    .expect("eventlog");
    check_workload(
        &Workload {
            label: "datagen:eventlog".into(),
            seed: 0xE7E9,
            n: eventlog.len(),
            sigma: eventlog.sigma(),
            psi: 0.75,
            max_period: 70,
        },
        &eventlog,
    );

    // The power surrogate: weekly cycle over discretized daily consumption.
    let power = PowerConfig {
        days: 140,
        seed: 0xC1AE6,
        ..Default::default()
    }
    .generate_series()
    .expect("power");
    check_workload(
        &Workload {
            label: "datagen:power".into(),
            seed: 0xC1AE6,
            n: power.len(),
            sigma: power.sigma(),
            psi: 0.5,
            max_period: 21,
        },
        &power,
    );

    // The retail surrogate: daily cycle in hourly transactions.
    let retail = RetailConfig {
        days: 10,
        ..Default::default()
    }
    .generate_series()
    .expect("retail");
    check_workload(
        &Workload {
            label: "datagen:retail".into(),
            seed: 0,
            n: retail.len(),
            sigma: retail.sigma(),
            psi: 0.5,
            max_period: 30,
        },
        &retail,
    );
}

#[test]
fn adversarial_workloads_conform_fixed_seeds() {
    // The deterministic backbone: one workload per seed, axes guaranteed by
    // construction. Always runs in full, independent of the time budget.
    for seed in 0..24u64 {
        let (workload, series) = adversarial_workload(seed);
        check_workload(&workload, &series);
    }
}

#[test]
fn adversarial_workloads_conform_randomized_budget() {
    // The randomized frontier: keep drawing seeds until the budget is
    // spent. CONFORMANCE_BUDGET_SECS=0 skips (the fixed-seed backbone
    // already ran); CI sets 60, the weekly job 600.
    let budget = std::env::var("CONFORMANCE_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(3);
    let deadline = Instant::now() + Duration::from_secs(budget);
    let mut seed = 1_000u64;
    let mut ran = 0u64;
    while Instant::now() < deadline {
        let (workload, series) = adversarial_workload(seed);
        check_workload(&workload, &series);
        seed += 1;
        ran += 1;
    }
    eprintln!("randomized conformance pass: {ran} workloads (budget {budget}s)");
}

// --------------------------------------------------------------------------
// Structure-aware proptest generators. Unlike the seed loops above, these
// shrink: a divergence comes back as the smallest (p, reps, residue, noise)
// tuple that still breaks, and failing cases persist to
// proptest-regressions/ so they re-run first forever after.

mod adversarial_properties {
    use super::*;
    use proptest::collection;
    use proptest::prelude::*;

    /// Periodic series with the period planted first and every other
    /// dimension chosen to sit on an implementation boundary: length
    /// residue in `{0, 1, p-1} (mod p)`, alphabet size crossing the
    /// 64-bit packing word, threshold an exact small rational.
    fn boundary_workload() -> BoxedStrategy<(Workload, Vec<usize>)> {
        (
            2usize..11, // planted period p
            2usize..7,  // whole repetitions
            0usize..3,  // residue selector: n = p*reps + {0, 1, p-1}
            0usize..7,  // sigma selector over {1, 2, 3, 5, 63, 64, 65}
            0usize..6,  // threshold selector over exact rationals
        )
            .prop_flat_map(|(p, reps, residue_sel, sigma_sel, psi_sel)| {
                let residue = [0, 1, p - 1][residue_sel];
                let n = p * reps + residue;
                let sigma = [1usize, 2, 3, 5, 63, 64, 65][sigma_sel];
                let (num, den) = [(1u64, 2u64), (2, 3), (3, 4), (1, 3), (4, 5), (1, 1)][psi_sel];
                (
                    Just((p, n, sigma, num, den)),
                    collection::vec(0usize..1_000_000, 0..12),
                )
            })
            .prop_map(|((p, n, sigma, num, den), noise)| {
                let mut ids: Vec<usize> = (0..n).map(|i| (i % p) % sigma).collect();
                for (k, raw) in noise.iter().enumerate() {
                    if !ids.is_empty() {
                        let at = raw % ids.len();
                        ids[at] = (raw / 7 + k) % sigma;
                    }
                }
                let workload = Workload {
                    label: format!("proptest:p={p},n={n}"),
                    seed: 0,
                    n,
                    sigma,
                    psi: num as f64 / den as f64,
                    max_period: (n / 2).clamp(1, 2 * p + 3),
                };
                (workload, ids)
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn production_paths_conform_on_boundary_series(
            case in boundary_workload()
        ) {
            let (workload, ids) = case;
            let alphabet = wide_alphabet(workload.sigma);
            let ids: Vec<SymbolId> = ids.into_iter().map(SymbolId::from_index).collect();
            let series = SymbolSeries::from_ids(ids, alphabet).expect("series");
            check_workload(&workload, &series);
        }

        #[test]
        fn snapshot_decoders_never_panic_on_arbitrary_bytes(
            bytes in collection::vec(any::<u8>(), 0..300)
        ) {
            let _ = SessionSnapshot::from_bytes(&bytes);
            let _ = decode_dump(&bytes);
        }

        #[test]
        fn snapshot_decoders_never_panic_past_a_valid_magic(
            is_dump in any::<bool>(),
            tail in collection::vec(any::<u8>(), 0..200)
        ) {
            let mut bytes: Vec<u8> = if is_dump { b"PSES".to_vec() } else { b"PSNP".to_vec() };
            bytes.extend(&tail);
            let _ = SessionSnapshot::from_bytes(&bytes);
            let _ = decode_dump(&bytes);
        }
    }
}

// --------------------------------------------------------------------------
// Snapshot decoder fuzzing (PSNP single-session and PSES dump containers).

/// A valid single-session snapshot blob plus its dump counterpart.
fn valid_blobs() -> (Vec<u8>, Vec<u8>) {
    let alphabet = Alphabet::latin(4).expect("alphabet");
    let series = SymbolSeries::parse(&"abcd".repeat(12), &alphabet).expect("series");
    let mut manager = SessionManager::builder(alphabet)
        .window(8)
        .threshold(0.5)
        .build();
    let id = SessionId::from("fuzz-seed");
    manager.ingest(&id, series.symbols()).expect("ingest");
    let snapshot = manager.snapshot(&id).expect("snapshot");
    let dump = manager.dump().expect("dump");
    (snapshot.to_bytes(), dump)
}

/// Exhaustively flips every bit of every byte of a valid blob and checks
/// the decoder's contract: every single-bit corruption is rejected (the
/// v2 FNV-1a trailer guarantees this for payload bits; magic/length
/// damage fails structurally first), the error carries an offset inside
/// the blob, and nothing panics. Flips landing in the version field may
/// instead read as a from-the-future document (`SnapshotVersion`).
fn assert_bitflip_rejected(
    label: &str,
    blob: &[u8],
    decode: impl Fn(&[u8]) -> Result<(), periodica_core::MiningError>,
) {
    for i in 0..blob.len() {
        for bit in 0..8 {
            let mut mutated = blob.to_vec();
            mutated[i] ^= 1 << bit;
            match decode(&mutated) {
                Ok(()) => panic!(
                    "{label}: byte {i} bit {bit}: single-bit corruption was accepted \
                     (a flipped blob must never restore)"
                ),
                Err(periodica_core::MiningError::SnapshotCorrupt { offset, .. }) => {
                    assert!(
                        offset <= blob.len(),
                        "{label}: byte {i} bit {bit}: corruption offset {offset} beyond blob"
                    );
                }
                Err(periodica_core::MiningError::SnapshotVersion { .. }) => {
                    assert!(
                        (4..8).contains(&i),
                        "{label}: byte {i} bit {bit}: version error outside the version field"
                    );
                }
                Err(e) => panic!("{label}: byte {i} bit {bit}: unexpected error kind {e:?}"),
            }
        }
    }
}

#[test]
fn snapshot_decoder_rejects_every_bitflip() {
    let (snapshot, dump) = valid_blobs();
    assert_bitflip_rejected("PSNP", &snapshot, |bytes| {
        SessionSnapshot::from_bytes(bytes).map(|s| {
            // Should a decode ever slip through, rehydrating it must at
            // least be panic-free before the harness flags the acceptance.
            let _ = s.into_detector();
        })
    });
    assert_bitflip_rejected("PSES", &dump, |bytes| {
        decode_dump(bytes).map(|snapshots| {
            for s in snapshots {
                let _ = s.into_detector();
            }
        })
    });
}

#[test]
fn snapshot_decoder_survives_truncation_and_noise() {
    let (snapshot, dump) = valid_blobs();
    // Every truncation point of both containers.
    for blob in [&snapshot, &dump] {
        for cut in 0..blob.len() {
            let _ = SessionSnapshot::from_bytes(&blob[..cut]);
            let _ = decode_dump(&blob[..cut]);
        }
    }
    // Pseudo-random byte soup: the decoders must reject or decode, never
    // panic, for arbitrary inputs (a proptest-style loop on stable).
    let mut lcg = Lcg(0x5EED);
    for _ in 0..512 {
        let len = lcg.below(300);
        let bytes: Vec<u8> = (0..len).map(|_| lcg.next() as u8).collect();
        let _ = SessionSnapshot::from_bytes(&bytes);
        let _ = decode_dump(&bytes);
    }
    // Valid magic with random tails: exercises deeper cursor states.
    for magic in [b"PSNP", b"PSES"] {
        for _ in 0..256 {
            let len = lcg.below(200);
            let mut bytes: Vec<u8> = magic.to_vec();
            bytes.extend((0..len).map(|_| lcg.next() as u8));
            let _ = SessionSnapshot::from_bytes(&bytes);
            let _ = decode_dump(&bytes);
        }
    }
}
