//! Every worked example in the paper, end to end through the public API.
//!
//! These tests are the reproduction's anchor: each cites the section of the
//! paper whose numbers it pins down.

use periodica::core::mapping::{paper_binary_string, PaperMapping};
use periodica::prelude::*;

fn series(text: &str, sigma: usize) -> SymbolSeries {
    let a = Alphabet::latin(sigma).expect("alphabet");
    SymbolSeries::parse(text, &a).expect("series")
}

/// Sect. 2.2: "in the time series T = abcabbabcb, the symbol b is periodic
/// with period 4 ... the symbol a is periodic with period 3".
#[test]
fn section_2_2_symbol_periodicity() {
    let t = series("abcabbabcb", 3);
    let a = t.alphabet().lookup("a").expect("a");
    let b = t.alphabet().lookup("b").expect("b");
    assert!((t.confidence(b, 4, 1) - 1.0).abs() < 1e-12);
    assert!((t.confidence(a, 3, 0) - 2.0 / 3.0).abs() < 1e-12);
}

/// Sect. 2.2: F2 examples on T = abbaaabaa.
#[test]
fn section_2_2_f2_counts() {
    let t = series("abbaaabaa", 2);
    let a = t.alphabet().lookup("a").expect("a");
    let b = t.alphabet().lookup("b").expect("b");
    assert_eq!(t.f2_projected(a, 1, 0), 3);
    assert_eq!(t.f2_projected(b, 1, 0), 1);
}

/// Sect. 2.3: single-symbol pattern supports — a** has support 2/3,
/// *b* has support 1 — and the candidate patterns are a**, *b*, ab*.
#[test]
fn section_2_3_patterns_via_the_miner() {
    let t = series("abcabbabcb", 3);
    let alphabet = t.alphabet().clone();
    let report = ObscureMiner::builder()
        .threshold(2.0 / 3.0)
        .build()
        .mine(&t)
        .expect("mine");
    let at3: Vec<(String, f64)> = report
        .patterns_at(3)
        .into_iter()
        .map(|m| (m.pattern.render(&alphabet), m.support.support))
        .collect();
    let support_of = |pat: &str| {
        at3.iter()
            .find(|(s, _)| s == pat)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    assert!((support_of("a**") - 2.0 / 3.0).abs() < 1e-12);
    assert!((support_of("*b*") - 1.0).abs() < 1e-12);
    assert!((support_of("ab*") - 2.0 / 3.0).abs() < 1e-12);
}

/// Sect. 3 opening: comparing T = abcabbabcb to its 3-shift yields four
/// matches: two a's at position 0 and two b's at position 1.
#[test]
fn section_3_shift_compare_matches() {
    let t = series("abcabbabcb", 3);
    let a = t.alphabet().lookup("a").expect("a");
    let b = t.alphabet().lookup("b").expect("b");
    let c = t.alphabet().lookup("c").expect("c");
    assert_eq!(t.lag_matches(a, 3), 2);
    assert_eq!(t.lag_matches(b, 3), 2);
    assert_eq!(t.lag_matches(c, 3), 0);
}

/// Sect. 3.2, Fig. 1: for T = acccabb, c_1 has weights {1, 11, 14}
/// (one b and two c's) and c_4 = 2^6 (one a at position 0); and the binary
/// mapping renders as 001 100 100 100 001 010 010.
#[test]
fn section_3_2_figure_1_components() {
    let t = series("acccabb", 3);
    assert_eq!(paper_binary_string(&t), "001100100100001010010");
    let m = PaperMapping::encode(&t);
    assert_eq!(m.weights(1), vec![1, 11, 14]);
    assert_eq!(m.component_value_u128(4).expect("fits"), 1 << 6);
    let w = m.decode(6, 4);
    assert_eq!(w.symbol.index(), 0);
    assert_eq!(w.time, 0);
}

/// Sect. 3.2: the W-set decomposition for T = abcabbabcb at p = 3 and for
/// T = cabccbacd at p = 4, exactly as printed in the paper.
#[test]
fn section_3_2_weight_decompositions() {
    let m = PaperMapping::encode(&series("abcabbabcb", 3));
    assert_eq!(m.weights(3), vec![7, 9, 16, 18]);
    assert_eq!(m.weights_for_symbol_phase(3, 0, 0), vec![9, 18]);
    assert_eq!(m.f2_counts(3)[0][0], 2);

    let m = PaperMapping::encode(&series("cabccbacd", 4));
    assert_eq!(m.weights(4), vec![6, 18]);
    assert_eq!(m.weights_for_symbol_phase(4, 2, 0), vec![18]);
    assert_eq!(m.weights_for_symbol_phase(4, 2, 3), vec![6]);
}

/// Sect. 1.1: the Ma-Hellerstein critique — occurrences at 0, 4, 5, 7, 10
/// have adjacent inter-arrivals {4, 1, 2, 3}; the underlying period 5 is
/// only visible to a detector that considers *all* inter-arrivals.
#[test]
fn section_1_1_adjacency_blind_spot() {
    let mut text = ['b'; 11];
    for p in [0usize, 4, 5, 7, 10] {
        text[p] = 'a';
    }
    let t = series(&text.iter().collect::<String>(), 2);
    let a = t.alphabet().lookup("a").expect("a");
    let gaps = periodica::baselines::ma_hellerstein::adjacent_distances(&t, a);
    assert_eq!(gaps, vec![4, 1, 2, 3]);
    // Our Definition-1 confidence at (5, 0) is perfect: positions 0, 5, 10.
    assert!((t.confidence(a, 5, 0) - 1.0).abs() < 1e-12);
}

/// Def. 1 boundary conditions: psi is in (0, 1]; p is a variable, never an
/// input — the miner must examine every period up to n/2 by default.
#[test]
fn definition_1_contract() {
    let t = series("abcabbabcb", 3);
    assert!(ObscureMiner::builder()
        .threshold(0.0)
        .build()
        .mine(&t)
        .is_err());
    assert!(ObscureMiner::builder()
        .threshold(1.0 + 1e-9)
        .build()
        .mine(&t)
        .is_err());
    let report = ObscureMiner::builder()
        .threshold(1.0)
        .build()
        .mine(&t)
        .expect("mine");
    assert_eq!(report.detection.examined_periods, t.len() / 2);
}
