//! End-to-end mining across engines, modes, and ingestion paths.

use periodica::core::{DetectorConfig, PeriodicityDetector};
use periodica::prelude::*;
use periodica::series::generate::{PeriodicSeriesSpec, SymbolDistribution};
use periodica::series::noise::NoiseSpec;
use std::io::Cursor;

fn planted(length: usize, period: usize, seed: u64) -> SymbolSeries {
    PeriodicSeriesSpec {
        length,
        period,
        alphabet_size: 8,
        distribution: SymbolDistribution::Uniform,
    }
    .generate(seed)
    .expect("generate")
    .series
}

#[test]
fn all_engines_produce_identical_reports_on_noisy_data() {
    let series = NoiseSpec::replacement(0.25)
        .expect("spec")
        .apply(&planted(3_000, 25, 1), 1);
    let mine = |engine| {
        ObscureMiner::builder()
            .threshold(0.45)
            .engine(engine)
            .max_period(120)
            .build()
            .mine(&series)
            .expect("mine")
    };
    let naive = mine(EngineKind::Naive);
    let bitset = mine(EngineKind::Bitset);
    let spectrum = mine(EngineKind::Spectrum);
    assert_eq!(
        naive.detection.periodicities,
        bitset.detection.periodicities
    );
    assert_eq!(
        naive.detection.periodicities,
        spectrum.detection.periodicities
    );
    assert_eq!(naive.patterns, spectrum.patterns);
    assert!(!spectrum.patterns.is_empty());
}

#[test]
fn closed_patterns_are_a_lossless_summary_of_enumeration() {
    // On a moderately noisy series, every enumerated frequent pattern must
    // be a sub-pattern of some closed pattern with at least its count.
    let series = NoiseSpec::replacement(0.3)
        .expect("spec")
        .apply(&planted(1_200, 12, 3), 3);
    let mine = |mode| {
        ObscureMiner::builder()
            .threshold(0.4)
            .max_period(24)
            .pattern_mode(mode)
            .build()
            .mine(&series)
            .expect("mine")
    };
    let closed = mine(PatternMode::Closed);
    let enumerated = mine(PatternMode::EnumerateAll);
    assert!(closed.patterns.len() <= enumerated.patterns.len());
    for m in &enumerated.patterns {
        let covered =
            closed.patterns.iter().any(|c| {
                m.pattern.is_subpattern_of(&c.pattern) && c.support.count >= m.support.count
            }) || closed.patterns.iter().any(|c| c.pattern == m.pattern);
        assert!(
            covered,
            "enumerated pattern {:?} not covered by any closed pattern",
            m.pattern
        );
    }
}

#[test]
fn streaming_reader_and_batch_agree() {
    let alphabet = Alphabet::latin(4).expect("alphabet");
    let text: String = (0..2_000)
        .map(|i: usize| (b'a' + ((i * i % 7 + i % 4) % 4) as u8) as char)
        .collect();
    let series = SymbolSeries::parse(&text, &alphabet).expect("series");
    let miner = || {
        ObscureMiner::builder()
            .threshold(0.5)
            .max_period(100)
            .build()
    };

    let batch = miner().mine(&series).expect("mine");
    let streamed = mine_reader(Cursor::new(text), alphabet, miner()).expect("stream mine");
    assert_eq!(
        batch.detection.periodicities,
        streamed.detection.periodicities
    );
    assert_eq!(batch.patterns, streamed.patterns);
}

#[test]
fn candidate_periods_is_a_superset_of_detected_periods() {
    let series = NoiseSpec::replacement(0.2)
        .expect("spec")
        .apply(&planted(5_000, 40, 7), 7);
    let detector = PeriodicityDetector::new(
        DetectorConfig {
            threshold: 0.5,
            ..Default::default()
        },
        EngineKind::Spectrum.build(),
    );
    let candidates = detector.candidate_periods(&series).expect("candidates");
    let detected = detector.detect(&series).expect("detect").detected_periods();
    for p in &detected {
        assert!(
            candidates.contains(p),
            "detected period {p} missing from candidates"
        );
    }
    assert!(candidates.contains(&40));
}

#[test]
fn harmonics_are_reported_consistently() {
    // A planted period is also periodic at its multiples, with equal or
    // lower confidence (noise accumulates with lag; it cannot increase).
    let series = NoiseSpec::replacement(0.15)
        .expect("spec")
        .apply(&planted(20_000, 25, 11), 11);
    let c1 = period_confidence(&series, 25);
    let c2 = period_confidence(&series, 50);
    let c3 = period_confidence(&series, 75);
    assert!(c1 > 0.6);
    // Allow small sampling slack; multiples must stay in the same regime.
    assert!(c2 > c1 - 0.15 && c2 < c1 + 0.15, "c1={c1} c2={c2}");
    assert!(c3 > c1 - 0.15 && c3 < c1 + 0.15, "c1={c1} c3={c3}");
    // Non-multiples are far below.
    assert!(period_confidence(&series, 37) < 0.35);
}

#[test]
fn empty_and_degenerate_series_through_the_full_api() {
    let alphabet = Alphabet::latin(3).expect("alphabet");
    for text in ["", "a", "ab", "aa"] {
        let series = SymbolSeries::parse(text, &alphabet).expect("series");
        let report = ObscureMiner::builder()
            .threshold(0.5)
            .build()
            .mine(&series)
            .expect("mine");
        assert!(report.detection.periodicities.len() <= 2, "text {text:?}");
    }
}

#[test]
fn one_touch_miner_enforces_single_pass_semantics() {
    let alphabet = Alphabet::latin(3).expect("alphabet");
    let miner = ObscureMiner::builder().threshold(0.9).build();
    let mut touch = OneTouchMiner::new(alphabet, miner);
    for i in 0..900usize {
        touch.push(SymbolId::from_index(i % 3)).expect("push");
    }
    assert_eq!(touch.len(), 900);
    let report = touch.finish().expect("finish");
    assert!(report.detection.detected_periods().contains(&3));
}
