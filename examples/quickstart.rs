//! Quickstart: mine the paper's running example end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through exactly the toy series from Sect. 2 of the paper
//! (`T = abcabbabcb`), printing the symbol periodicities and the periodic
//! patterns with their supports.

use periodica::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An alphabet (the discretization levels) and a series over it.
    let alphabet = Alphabet::latin(3)?;
    let series = SymbolSeries::parse("abcabbabcb", &alphabet)?;
    println!("series    : {series}");
    println!("alphabet  : {alphabet}  (sigma = {})", alphabet.len());

    // 2. A miner. The periodicity threshold psi is the only knob that
    //    matters to begin with; the period is *not* an input — discovering
    //    it is the point.
    let miner = ObscureMiner::builder()
        .threshold(2.0 / 3.0)
        .engine(EngineKind::Spectrum) // the paper's O(n log n) convolution
        .build();
    let report = miner.mine(&series)?;

    // 3. Symbol periodicities (Def. 1): which symbol recurs every p steps
    //    starting where, and how reliably.
    println!("\nsymbol periodicities (psi = 2/3):");
    for sp in &report.detection.periodicities {
        println!(
            "  symbol {:>2}  period {:>2}  position {:>2}  confidence {:.3}",
            alphabet.name(sp.symbol),
            sp.period,
            sp.phase,
            sp.confidence,
        );
    }

    // 4. Periodic patterns (Defs. 2-3), don't-care positions as '*'.
    println!("\nperiodic patterns:");
    for m in &report.patterns {
        println!(
            "  {}  (period {}, support {:.3})",
            m.pattern.render(&alphabet),
            m.pattern.period(),
            m.support.support,
        );
    }

    // The paper's Sect. 2 results, verified:
    assert!(report
        .patterns
        .iter()
        .any(|m| m.pattern.render(&alphabet) == "ab*"
            && (m.support.support - 2.0 / 3.0).abs() < 1e-9));
    println!("\nreproduced the paper's worked example: a**, *b*, ab* at period 3.");
    Ok(())
}
