//! Localizing a periodicity in time: *when* did the rhythm hold?
//!
//! ```text
//! cargo run --release --example regime_change
//! ```
//!
//! A maintenance job beats every 30 slots — but only between two
//! reconfigurations. Globally its Def.-1 confidence is diluted; the
//! sliding-window localizer recovers the active interval and its in-regime
//! confidence, turning "this *sometimes* beats" into "it beat from here to
//! here, reliably".

use periodica::core::{localize, LocalizeConfig};
use periodica::datagen::composite::{CompositeConfig, Rhythm};
use periodica::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (start, end) = (30_000usize, 80_000usize);
    let config = CompositeConfig {
        length: 120_000,
        alphabet_size: 8,
        rhythms: vec![Rhythm {
            symbol: SymbolId(3),
            period: 30,
            phase: 11,
            reliability: 0.96,
            active: Some((start, end)),
        }],
        seed: 77,
    };
    let series = config.generate()?;
    let alphabet = series.alphabet().clone();

    let global = series.confidence(SymbolId(3), 30, 11);
    println!(
        "symbol `{}` @ period 30, phase 11: global confidence {global:.3} (diluted)",
        alphabet.name(SymbolId(3))
    );

    let intervals = localize(
        &series,
        SymbolId(3),
        30,
        11,
        &LocalizeConfig::for_period(30, 0.8),
    )?;
    println!("\nactive intervals (threshold 0.8 in 20-period windows):");
    for iv in &intervals {
        println!(
            "  [{:>6}, {:>6})  mean in-window confidence {:.3}",
            iv.start, iv.end, iv.mean_confidence
        );
    }
    assert_eq!(intervals.len(), 1);
    let iv = intervals[0];
    assert!(
        iv.start.abs_diff(start) <= 600 * 3,
        "start estimate {}",
        iv.start
    );
    assert!(iv.end.abs_diff(end) <= 600 * 3, "end estimate {}", iv.end);
    assert!(iv.mean_confidence > global);
    println!(
        "\nrecovered the regime to within a window: true [{}, {}), estimated [{}, {}).",
        start, end, iv.start, iv.end
    );
    Ok(())
}
