//! The full downstream pipeline: CSV file -> discretize -> mine.
//!
//! ```text
//! cargo run --release --example from_csv
//! ```
//!
//! Exports the surrogate datasets to a temp directory as plain CSV (the
//! shape a user's own measurements would arrive in), reads them back with
//! the generic reader, discretizes with the paper's level definitions, and
//! mines — demonstrating that nothing in the pipeline depends on the data
//! having been generated in-process.

use periodica::datagen::export::{export_datasets, read_csv};
use periodica::datagen::{
    power_alphabet, power_levels, retail_alphabet, PowerConfig, RetailConfig, RetailLevels,
};
use periodica::prelude::*;
use periodica::series::discretize::Discretizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("periodica-from-csv-{}", std::process::id()));
    let (retail_path, power_path) =
        export_datasets(&dir, &RetailConfig::default(), &PowerConfig::default())?;
    println!(
        "exported:\n  {}\n  {}",
        retail_path.display(),
        power_path.display()
    );

    // Retail: hourly counts -> paper levels (a = zero tx/h, ...).
    let values = read_csv(&retail_path)?;
    let series = RetailLevels.discretize(&values, &retail_alphabet()?)?;
    let report = ObscureMiner::builder()
        .threshold(0.6)
        .max_period(200)
        .mine_patterns(false)
        .build()
        .mine(&series)?;
    let periods = report.detection.detected_periods();
    println!(
        "\nretail_hourly.csv: {} hours, detected periods (psi=0.6, <=200): {:?}",
        series.len(),
        &periods[..periods.len().min(10)]
    );
    assert!(periods.contains(&24));

    // Power: daily Watts -> expert breakpoints (< 6000 = very low, ...).
    let values = read_csv(&power_path)?;
    let series = power_levels()?.discretize(&values, &power_alphabet()?)?;
    let report = ObscureMiner::builder()
        .threshold(0.5)
        .max_period(91)
        .mine_patterns(false)
        .build()
        .mine(&series)?;
    let periods = report.detection.detected_periods();
    println!(
        "power_daily.csv : {} days, detected periods (psi=0.5, <=91): {:?}",
        series.len(),
        periods
    );
    assert!(periods.contains(&7));

    std::fs::remove_dir_all(&dir)?;
    println!("\npipeline verified: file -> values -> levels -> periods.");
    Ok(())
}
