//! Online period discovery over an unbounded stream, in bounded memory.
//!
//! ```text
//! cargo run --release --example online_stream
//! ```
//!
//! A sensor stream changes behaviour mid-flight: it starts beating at
//! period 40, then the beat disappears. The [`OnlineDetector`] watches the
//! stream with O(sigma * max_period) memory — it never stores the data —
//! and its candidate list tracks the change. This is the data-stream
//! deployment the paper's one-pass design targets, extended to *continuous*
//! operation (the incremental-mining direction of the paper's companion
//! work).

use periodica::core::OnlineDetector;
use periodica::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphabet = Alphabet::latin(6)?;
    let mut detector = OnlineDetector::builder(alphabet.clone())
        .window(128)
        .build();
    let mut rng = StdRng::seed_from_u64(99);
    let beat = SymbolId(2);

    // Background traffic uses symbols {0, 1, 3, 4, 5}; symbol 2 is a
    // dedicated event type that only the heartbeat emits (the usual shape
    // of a monitoring feed: the poller's log line is its own event type).
    let mut feed =
        |detector: &mut OnlineDetector, n: usize, beating: bool| -> Result<(), MiningError> {
            for i in 0..n {
                let symbol = if beating && i % 40 == 13 {
                    beat
                } else {
                    let k = rng.random_range(0..5);
                    SymbolId::from_index(if k >= 2 { k + 1 } else { k })
                };
                detector.push(symbol)?;
            }
            Ok(())
        };

    // Phase 1: the beat is present.
    feed(&mut detector, 40_000, true)?;
    let candidates = detector.candidates(0.8)?;
    assert!(
        candidates.iter().any(|c| c.period == 40),
        "period 40 must be a candidate"
    );
    let bound = detector.confidence_bound(beat, 40)?;
    println!(
        "after 40k beating samples : `{}` @ period 40, bound {:.2}",
        alphabet.name(beat),
        bound
    );
    assert!(bound > 0.9);

    // Phase 2: the beat stops; the evidence dilutes as the stream grows.
    feed(&mut detector, 120_000, false)?;
    let bound = detector.confidence_bound(beat, 40)?;
    println!(
        "after 120k silent samples : `{}` @ period 40, bound fell to {:.2}",
        alphabet.name(beat),
        bound
    );
    assert!(bound < 0.5);
    println!(
        "memory stayed bounded: {} symbols consumed, max_period {} tail per symbol",
        detector.len(),
        detector.max_period()
    );
    Ok(())
}
