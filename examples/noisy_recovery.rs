//! Noise resilience and engine equivalence, hands on.
//!
//! ```text
//! cargo run --release --example noisy_recovery
//! ```
//!
//! Plants a period-25 pattern in 100k symbols, corrupts it with increasing
//! replacement noise, and watches the detected confidence degrade exactly
//! as the paper's Fig. 6 predicts — while all three convolution engines
//! (naive shift-compare, bit-parallel, exact-NTT spectrum) agree bit for
//! bit on every run.

use periodica::prelude::*;
use periodica::series::generate::{PeriodicSeriesSpec, SymbolDistribution};
use periodica::series::noise::NoiseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = PeriodicSeriesSpec {
        length: 100_000,
        period: 25,
        alphabet_size: 10,
        distribution: SymbolDistribution::Uniform,
    };
    let clean = spec.generate(42)?;
    println!("planted period 25 in {} symbols", clean.series.len());
    println!("{:<8} {:>12} {:>10}", "noise", "confidence", "detected");

    for pct in [0u32, 10, 20, 30, 40, 50] {
        let noisy = NoiseSpec::replacement(pct as f64 / 100.0)?.apply(&clean.series, 7);
        let confidence = period_confidence(&noisy, 25);
        let report = ObscureMiner::builder()
            .threshold(0.4) // the paper's observation: a 40% threshold
            .max_period(200) // tolerates 50% replacement noise
            .mine_patterns(false)
            .build()
            .mine(&noisy)?;
        let detected = report.detection.detected_periods().contains(&25);
        println!("{:>5}%   {confidence:>12.3} {detected:>10}", pct);

        // Engine equivalence on the corrupted series: identical outputs.
        let runs: Vec<_> = [EngineKind::Naive, EngineKind::Bitset, EngineKind::Spectrum]
            .into_iter()
            .map(|engine| {
                ObscureMiner::builder()
                    .threshold(0.4)
                    .max_period(60)
                    .engine(engine)
                    .mine_patterns(false)
                    .build()
                    .mine(&noisy)
                    .map(|r| r.detection.periodicities)
            })
            .collect::<Result<Vec<_>, _>>()?;
        assert!(
            runs.windows(2).all(|w| w[0] == w[1]),
            "engines diverged at {pct}% noise"
        );
    }
    println!("\nall three engines agreed on every noisy series.");
    Ok(())
}
