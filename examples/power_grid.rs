//! Power grid: the paper's CIMEG scenario on the bundled surrogate.
//!
//! ```text
//! cargo run --release --example power_grid
//! ```
//!
//! Simulates a year of daily household power-consumption readings,
//! discretizes with the paper's expert breakpoints (very low < 6000 W/day,
//! 2000 W levels above), and mines for the weekly rhythm. Expect period 7
//! and its multiples, and interpretations like the paper's
//! "(a, 3): less than 6000 Watts/day on the 4th day of the week".

use periodica::datagen::PowerConfig;
use periodica::prelude::*;

const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PowerConfig::default();
    let values = config.generate_values();
    let series = config.generate_series()?;
    let alphabet = series.alphabet().clone();
    println!(
        "simulated {} days of consumption (mean {:.0} W/day)",
        series.len(),
        values.iter().sum::<f64>() / values.len() as f64
    );

    let report = ObscureMiner::builder()
        .threshold(0.5)
        .max_period(91)
        .build()
        .mine(&series)?;
    let periods = report.detection.detected_periods();
    println!("\ndetected periods at psi = 0.5: {periods:?}");
    assert!(periods.contains(&7), "the weekly cycle must surface");

    println!("\nweekly periodicities (period 7):");
    for sp in report.detection.at_period(7) {
        println!(
            "  ({}, {})  `{}` consumption on {}, {:.0}% of weeks",
            alphabet.name(sp.symbol),
            sp.phase,
            alphabet.name(sp.symbol),
            WEEKDAYS[sp.phase],
            sp.confidence * 100.0,
        );
    }

    println!("\nweekly patterns (closed):");
    for m in report.patterns_at(7).into_iter().take(6) {
        println!(
            "  {}  support {:.1}%",
            m.pattern.render(&alphabet),
            m.support.support * 100.0
        );
    }
    Ok(())
}
