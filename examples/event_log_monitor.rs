//! Event-log monitoring with the one-pass streaming API.
//!
//! ```text
//! cargo run --release --example event_log_monitor
//! ```
//!
//! The intro's motivating scenario: a network event log with obscure
//! periodic behaviour (pollers, cron jobs) buried in random events. The
//! log is consumed **once**, event by event, through [`OneTouchMiner`] —
//! the paper's one-pass contract as an API — and the planted heartbeats
//! come back out with their periods, phases, and reliabilities.

use periodica::datagen::{EventLogConfig, Heartbeat};
use periodica::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EventLogConfig {
        length: 50_000,
        heartbeats: vec![
            Heartbeat {
                symbol: SymbolId(5),
                period: 60,
                phase: 7,
                reliability: 0.97,
            },
            Heartbeat {
                symbol: SymbolId(4),
                period: 300,
                phase: 120,
                reliability: 0.99,
            },
        ],
        ..Default::default()
    };
    let alphabet = config.alphabet()?;
    let log = config.generate()?;
    println!("streaming {} log events, one pass...", log.len());

    // Feed the stream event-by-event; nothing is ever re-read.
    let miner = ObscureMiner::builder()
        .threshold(0.85)
        .max_period(400)
        .mine_patterns(false)
        .build();
    let mut touch = OneTouchMiner::new(alphabet.clone(), miner);
    for &event in log.symbols() {
        touch.push(event)?;
    }
    let report = touch.finish()?;

    // Harmonic analysis collapses (p, 2p, 3p, ...) families to their
    // fundamentals — the headline answer to "what beats in this log?".
    let fundamentals = periodica::core::fundamentals(&report.detection);
    println!("\nperiodic events found (psi = 0.85, fundamentals only):");
    for sp in &fundamentals {
        println!(
            "  `{}` every {} slots, offset {}, confidence {:.2}",
            alphabet.name(sp.symbol),
            sp.period,
            sp.phase,
            sp.confidence,
        );
    }
    assert!(fundamentals.len() >= 2, "both heartbeats should surface");
    println!("\nboth planted heartbeats recovered (poll@60+7, gc@300+120).");
    Ok(())
}
