//! Retail traffic: the paper's Wal-Mart scenario on the bundled surrogate.
//!
//! ```text
//! cargo run --release --example retail_traffic
//! ```
//!
//! Generates ~15 months of hourly store-transaction counts, discretizes
//! them into the paper's five levels (`a` = zero tx/h, `b` < 200/h, 200-wide
//! levels above), and mines for obscure periods. Expect the daily cycle
//! (24), the weekly cycle (168), and — because the simulation includes a
//! daylight-saving phase shift — the paper's surprising 3961-hour artifact.

use periodica::datagen::RetailConfig;
use periodica::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RetailConfig::default();
    let series = config.generate_series()?;
    let alphabet = series.alphabet().clone();
    println!(
        "simulated {} hours of store traffic ({} days)",
        series.len(),
        config.days
    );

    // Period discovery across everything up to ~half a year of hours.
    let miner = ObscureMiner::builder()
        .threshold(0.6)
        .max_period(4_200)
        .mine_patterns(false)
        .build();
    let report = miner.mine(&series)?;
    let periods = report.detection.detected_periods();
    println!(
        "\ndetected {} candidate periods at psi = 0.6",
        periods.len()
    );
    for target in [24usize, 168, 24 * 165 + 1] {
        let conf = period_confidence(&series, target);
        println!(
            "  period {target:>5} ({}) confidence {conf:.3} {}",
            match target {
                24 => "daily cycle",
                168 => "weekly cycle",
                _ => "daylight-saving artifact",
            },
            if periods.contains(&target) {
                "[detected]"
            } else {
                ""
            },
        );
    }

    // Zoom into the daily period and read patterns the way the paper does:
    // "(b, 7) means fewer than 200 transactions/hour between 7am and 8am".
    let daily = ObscureMiner::builder()
        .threshold(0.5)
        .min_period(24)
        .max_period(24)
        .build()
        .mine(&series)?;
    println!("\nsingle-symbol patterns at period 24 (psi = 0.5):");
    for sp in daily.detection.at_period(24) {
        println!(
            "  ({}, {:>2})  level `{}` at hour {:02}:00, {:.0}% of days",
            alphabet.name(sp.symbol),
            sp.phase,
            alphabet.name(sp.symbol),
            sp.phase,
            sp.confidence * 100.0,
        );
    }
    println!("\nmulti-symbol patterns at period 24 (closed, most supported first):");
    for m in daily
        .patterns_at(24)
        .into_iter()
        .filter(|m| m.pattern.cardinality() >= 2)
        .take(8)
    {
        println!(
            "  {}  support {:.1}%",
            m.pattern.render(&alphabet),
            m.support.support * 100.0
        );
    }
    Ok(())
}
